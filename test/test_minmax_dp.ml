(* Validation of the optimal 1-D MinMaxErr dynamic program (Theorem 3.1)
   against brute-force enumeration, plus structural properties. *)

module Minmax_dp = Wavesyn_core.Minmax_dp
module Brute_force = Wavesyn_core.Brute_force
module Synopsis = Wavesyn_synopsis.Synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

let paper_data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |]

let signals =
  let rng = Prng.create ~seed:2024 in
  let mk n f = Array.init n f in
  [
    ("paper", paper_data);
    ("constant", Array.make 8 5.);
    ("zeros", Array.make 8 0.);
    ("impulse", mk 8 (fun i -> if i = 3 then 100. else 0.));
    ("ramp", mk 16 (fun i -> float_of_int i));
    ("alternating", mk 16 (fun i -> if i mod 2 = 0 then 1. else -1.));
    ("random8", mk 8 (fun _ -> Prng.float rng 20. -. 10.));
    ("random16", mk 16 (fun _ -> Prng.float rng 20. -. 10.));
    ("skewed", mk 16 (fun i -> if i < 2 then 1000. else Prng.float rng 2.));
    ("small-values", mk 8 (fun _ -> Prng.float rng 0.1));
  ]

let metrics =
  [
    ("abs", Metrics.Abs);
    ("rel-s1", Metrics.Rel { sanity = 1.0 });
    ("rel-s01", Metrics.Rel { sanity = 0.1 });
  ]

(* The DP must (a) report the brute-force optimal value and (b) return a
   synopsis whose true measured error equals that value. *)
let optimality_case name data metric_name metric budget () =
  let r = Minmax_dp.solve ~data ~budget metric in
  let brute, _ = Brute_force.optimal_1d ~data ~budget metric in
  check
    (Printf.sprintf "%s/%s/B=%d dp=brute (%g vs %g)" name metric_name budget
       r.Minmax_dp.max_err brute)
    true
    (Float_util.approx_equal ~eps:1e-9 r.Minmax_dp.max_err brute);
  let measured = Metrics.of_synopsis metric ~data r.Minmax_dp.synopsis in
  check
    (Printf.sprintf "%s/%s/B=%d synopsis achieves claimed error" name
       metric_name budget)
    true
    (Float_util.approx_equal ~eps:1e-9 r.Minmax_dp.max_err measured);
  check
    (Printf.sprintf "%s/%s/B=%d respects budget" name metric_name budget)
    true
    (Synopsis.size r.Minmax_dp.synopsis <= budget)

let optimality_tests =
  List.concat_map
    (fun (name, data) ->
      List.concat_map
        (fun (mname, metric) ->
          List.map
            (fun budget ->
              Alcotest.test_case
                (Printf.sprintf "optimal %s %s B=%d" name mname budget)
                `Quick
                (optimality_case name data mname metric budget))
            [ 0; 1; 2; 3; 5 ])
        metrics)
    signals

let test_paper_example_exact_budget () =
  (* With all 6 non-zero coefficients retained the error is zero. *)
  let r = Minmax_dp.solve ~data:paper_data ~budget:6 Metrics.Abs in
  checkf "zero error at full budget" 0. r.Minmax_dp.max_err;
  (* B=0 keeps nothing: max abs error is the largest |d_i|. *)
  let r0 = Minmax_dp.solve ~data:paper_data ~budget:0 Metrics.Abs in
  checkf "B=0 error" 5. r0.Minmax_dp.max_err;
  checki "B=0 empty synopsis" 0 (Synopsis.size r0.Minmax_dp.synopsis)

let test_monotone_in_budget () =
  List.iter
    (fun (name, data) ->
      List.iter
        (fun (mname, metric) ->
          let errs =
            List.map
              (fun b -> (Minmax_dp.solve ~data ~budget:b metric).Minmax_dp.max_err)
              [ 0; 1; 2; 3; 4; 5; 6 ]
          in
          let rec non_increasing = function
            | a :: (b :: _ as rest) ->
                check
                  (Printf.sprintf "%s/%s monotone" name mname)
                  true
                  (b <= a +. 1e-12);
                non_increasing rest
            | _ -> ()
          in
          non_increasing errs)
        metrics)
    signals

let test_budget_beyond_coeffs_is_exact () =
  List.iter
    (fun (name, data) ->
      let r = Minmax_dp.solve ~data ~budget:(Array.length data) Metrics.Abs in
      checkf (Printf.sprintf "%s exact at full budget" name) 0. r.Minmax_dp.max_err)
    signals

let test_zero_data () =
  let r = Minmax_dp.solve ~data:(Array.make 8 0.) ~budget:2 Metrics.Abs in
  checkf "all-zero data is free" 0. r.Minmax_dp.max_err;
  checki "keeps nothing" 0 (Synopsis.size r.Minmax_dp.synopsis)

let test_constant_data_single_coeff () =
  (* Constant data needs exactly one coefficient (the average). *)
  let r = Minmax_dp.solve ~data:(Array.make 16 7.) ~budget:1 Metrics.Abs in
  checkf "constant captured by average" 0. r.Minmax_dp.max_err;
  check "retains c0" true (Synopsis.mem r.Minmax_dp.synopsis 0)

let test_singleton_domain () =
  let r = Minmax_dp.solve ~data:[| 42. |] ~budget:1 Metrics.Abs in
  checkf "N=1 B=1" 0. r.Minmax_dp.max_err;
  let r0 = Minmax_dp.solve ~data:[| 42. |] ~budget:0 Metrics.Abs in
  checkf "N=1 B=0" 42. r0.Minmax_dp.max_err

let test_n2 () =
  let data = [| 10.; -10. |] in
  (* Coefficients: avg 0 (zero -> never kept), detail 10. *)
  let r = Minmax_dp.solve ~data ~budget:1 Metrics.Abs in
  checkf "n=2 keeps detail" 0. r.Minmax_dp.max_err;
  check "detail retained" true (Synopsis.mem r.Minmax_dp.synopsis 1)

let test_rejects_bad_input () =
  Alcotest.check_raises "non-pow2"
    (Invalid_argument "Minmax_dp.solve: data length must be a power of two")
    (fun () -> ignore (Minmax_dp.solve ~data:(Array.make 6 0.) ~budget:1 Metrics.Abs));
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Minmax_dp.solve: negative budget")
    (fun () -> ignore (Minmax_dp.solve ~data:(Array.make 4 0.) ~budget:(-1) Metrics.Abs))

let test_rel_sanity_bound_effect () =
  (* With a huge sanity bound, relative error degenerates to absolute
     error scaled by 1/s: the chosen synopses should coincide. *)
  let data = signals |> List.assoc "random16" in
  let s = 1e6 in
  let r_rel = Minmax_dp.solve ~data ~budget:4 (Metrics.Rel { sanity = s }) in
  let r_abs = Minmax_dp.solve ~data ~budget:4 Metrics.Abs in
  check "huge sanity behaves like absolute" true
    (Float_util.approx_equal ~eps:1e-9
       (r_rel.Minmax_dp.max_err *. s)
       r_abs.Minmax_dp.max_err)

let test_dp_beats_or_ties_greedy_everywhere () =
  (* The optimum can never exceed the error of retaining the B largest
     normalized coefficients. *)
  let rng = Prng.create ~seed:77 in
  for trial = 1 to 10 do
    let n = 32 in
    let data = Array.init n (fun _ -> Prng.float rng 100. -. 50.) in
    let w = Wavesyn_haar.Haar1d.decompose data in
    let order =
      Array.init n Fun.id |> Array.to_list
      |> List.filter (fun i -> w.(i) <> 0.)
      |> List.sort (fun i j ->
             compare
               (Float.abs (w.(j) *. Wavesyn_haar.Haar1d.normalization ~n j))
               (Float.abs (w.(i) *. Wavesyn_haar.Haar1d.normalization ~n i)))
    in
    List.iter
      (fun budget ->
        let greedy_idx = List.filteri (fun k _ -> k < budget) order in
        let greedy = Synopsis.of_wavelet ~wavelet:w greedy_idx in
        let greedy_err = Metrics.of_synopsis Metrics.Abs ~data greedy in
        let r = Minmax_dp.solve ~data ~budget Metrics.Abs in
        check
          (Printf.sprintf "trial %d B=%d dp <= greedy" trial budget)
          true
          (r.Minmax_dp.max_err <= greedy_err +. 1e-9))
      [ 1; 4; 8 ]
  done

let test_budget_for () =
  let rng = Prng.create ~seed:900 in
  let data = Array.init 32 (fun _ -> Prng.float rng 100. -. 50.) in
  List.iter
    (fun metric ->
      List.iter
        (fun target ->
          let { Minmax_dp.best = r; feasible } =
            Minmax_dp.budget_for ~data ~target metric
          in
          check
            (Printf.sprintf "target %g feasibility verdict" target)
            (r.Minmax_dp.max_err <= target)
            feasible;
          check
            (Printf.sprintf "target %g reached (%g)" target r.Minmax_dp.max_err)
            true
            (r.Minmax_dp.max_err <= target +. 1e-9);
          (* minimality: one fewer coefficient must miss the target *)
          let b = Synopsis.size r.Minmax_dp.synopsis in
          if b > 0 then begin
            let worse = Minmax_dp.solve ~data ~budget:(b - 1) metric in
            check
              (Printf.sprintf "budget %d is minimal" b)
              true
              (worse.Minmax_dp.max_err > target -. 1e-9)
          end)
        [ 50.; 20.; 5.; 1.; 0. ])
    [ Metrics.Abs; Metrics.Rel { sanity = 5.0 } ]

let test_budget_for_zero_target_needs_all () =
  let data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |] in
  let r = (Minmax_dp.budget_for ~data ~target:0. Metrics.Abs).Minmax_dp.best in
  checkf "exact reconstruction" 0. r.Minmax_dp.max_err;
  checki "needs all five non-zero coefficients" 5
    (Synopsis.size r.Minmax_dp.synopsis)

let test_budget_for_huge_target_needs_nothing () =
  let data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |] in
  let r =
    (Minmax_dp.budget_for ~data ~target:100. Metrics.Abs).Minmax_dp.best
  in
  checki "empty synopsis suffices" 0 (Synopsis.size r.Minmax_dp.synopsis)

(* Regression: the dual search used to re-solve its final budget after
   the bisection even though that budget had just been probed. With the
   probe cache, a huge target — answered entirely by the budget-0
   probe — must cost exactly one solve's worth of DP states. *)
let test_budget_for_probe_cache () =
  let rng = Prng.create ~seed:901 in
  let data = Array.init 32 (fun _ -> Prng.float rng 100. -. 50.) in
  let search_states = ref 0 in
  let r =
    Minmax_dp.budget_for
      ~on_state:(fun () -> incr search_states)
      ~data ~target:1e9 Metrics.Abs
  in
  check "huge target feasible" true r.Minmax_dp.feasible;
  let solo_states = ref 0 in
  ignore
    (Minmax_dp.solve
       ~on_state:(fun () -> incr solo_states)
       ~data ~budget:0 Metrics.Abs);
  checki "budget 0 solved exactly once" !solo_states !search_states

(* Regression: an unreachable target used to be silently absorbed — the
   caller got the full-budget solution with no way to tell it missed.
   A negative target is unreachable by definition (errors are >= 0). *)
let test_budget_for_infeasible_target () =
  let data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |] in
  let r = Minmax_dp.budget_for ~data ~target:(-1.) Metrics.Abs in
  check "negative target infeasible" false r.Minmax_dp.feasible;
  check "best still reported" true
    (r.Minmax_dp.best.Minmax_dp.max_err >= 0.);
  checki "best retains every nonzero coefficient" 5
    (Synopsis.size r.Minmax_dp.best.Minmax_dp.synopsis)

let prop_dp_matches_brute =
  QCheck.Test.make ~name:"dp equals brute force on random instances" ~count:60
    QCheck.(
      pair
        (array_of_size (Gen.oneofl [ 4; 8 ]) (float_range (-20.) 20.))
        (int_bound 4))
    (fun (data, budget) ->
      let metric = Metrics.Abs in
      let r = Minmax_dp.solve ~data ~budget metric in
      let brute, _ = Brute_force.optimal_1d ~data ~budget metric in
      Float_util.approx_equal ~eps:1e-9 r.Minmax_dp.max_err brute)

let prop_dp_matches_brute_rel =
  QCheck.Test.make ~name:"dp equals brute force (relative metric)" ~count:40
    QCheck.(
      pair
        (array_of_size (Gen.oneofl [ 4; 8 ]) (float_range (-20.) 20.))
        (int_bound 4))
    (fun (data, budget) ->
      let metric = Metrics.Rel { sanity = 0.5 } in
      let r = Minmax_dp.solve ~data ~budget metric in
      let brute, _ = Brute_force.optimal_1d ~data ~budget metric in
      Float_util.approx_equal ~eps:1e-9 r.Minmax_dp.max_err brute)

let prop_synopsis_achieves_value =
  QCheck.Test.make ~name:"returned synopsis achieves reported value" ~count:60
    QCheck.(
      pair
        (array_of_size (Gen.oneofl [ 4; 8; 16; 32 ]) (float_range (-20.) 20.))
        (int_bound 6))
    (fun (data, budget) ->
      let metric = Metrics.Rel { sanity = 1.0 } in
      let r = Minmax_dp.solve ~data ~budget metric in
      let measured = Metrics.of_synopsis metric ~data r.Minmax_dp.synopsis in
      Float_util.approx_equal ~eps:1e-9 r.Minmax_dp.max_err measured)

let () =
  Alcotest.run "minmax_dp"
    [
      ("optimality vs brute force", optimality_tests);
      ( "structure",
        [
          Alcotest.test_case "paper example budgets" `Quick test_paper_example_exact_budget;
          Alcotest.test_case "monotone in budget" `Quick test_monotone_in_budget;
          Alcotest.test_case "full budget exact" `Quick test_budget_beyond_coeffs_is_exact;
          Alcotest.test_case "zero data" `Quick test_zero_data;
          Alcotest.test_case "constant data" `Quick test_constant_data_single_coeff;
          Alcotest.test_case "singleton domain" `Quick test_singleton_domain;
          Alcotest.test_case "n=2" `Quick test_n2;
          Alcotest.test_case "bad input" `Quick test_rejects_bad_input;
          Alcotest.test_case "sanity bound limit" `Quick test_rel_sanity_bound_effect;
          Alcotest.test_case "dp beats greedy" `Quick test_dp_beats_or_ties_greedy_everywhere;
          Alcotest.test_case "budget_for dual" `Quick test_budget_for;
          Alcotest.test_case "budget_for zero target" `Quick test_budget_for_zero_target_needs_all;
          Alcotest.test_case "budget_for huge target" `Quick test_budget_for_huge_target_needs_nothing;
          Alcotest.test_case "budget_for probe cache" `Quick test_budget_for_probe_cache;
          Alcotest.test_case "budget_for infeasible target" `Quick test_budget_for_infeasible_target;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_dp_matches_brute;
          QCheck_alcotest.to_alcotest prop_dp_matches_brute_rel;
          QCheck_alcotest.to_alcotest prop_synopsis_achieves_value;
        ] );
    ]
