(* Cross-validation of the algorithm variants:
   - Minmax_dp ablation knobs (split strategy, budget capping) must not
     change results;
   - the bottom-up O(NB)-workspace evaluation must compute the same
     optimal value as the top-down solver;
   - the standard multi-dimensional decomposition. *)

module Minmax_dp = Wavesyn_core.Minmax_dp
module Minmax_bottomup = Wavesyn_core.Minmax_bottomup
module Haar1d = Wavesyn_haar.Haar1d
module Haar_std = Wavesyn_haar.Haar_std
module Haar_md = Wavesyn_haar.Haar_md
module Metrics = Wavesyn_synopsis.Metrics
module Synopsis = Wavesyn_synopsis.Synopsis
module Signal = Wavesyn_datagen.Signal
module Ndarray = Wavesyn_util.Ndarray
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let random_data ~seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun _ -> Prng.float rng 40. -. 20.)

let metrics = [ Metrics.Abs; Metrics.Rel { sanity = 1.0 } ]

(* --- ablation knobs --- *)

let test_split_strategies_agree () =
  for seed = 1 to 8 do
    let data = random_data ~seed 32 in
    List.iter
      (fun metric ->
        List.iter
          (fun budget ->
            let a = Minmax_dp.solve ~split:Minmax_dp.Binary_search ~data ~budget metric in
            let b = Minmax_dp.solve ~split:Minmax_dp.Linear_scan ~data ~budget metric in
            checkf
              (Printf.sprintf "seed %d B=%d same value" seed budget)
              a.Minmax_dp.max_err b.Minmax_dp.max_err)
          [ 0; 1; 4; 9 ])
      metrics
  done

let test_cap_budget_agrees () =
  for seed = 1 to 8 do
    let data = random_data ~seed:(seed + 100) 16 in
    List.iter
      (fun metric ->
        List.iter
          (fun budget ->
            let a = Minmax_dp.solve ~cap_budget:true ~data ~budget metric in
            let b = Minmax_dp.solve ~cap_budget:false ~data ~budget metric in
            checkf
              (Printf.sprintf "seed %d B=%d same value" seed budget)
              a.Minmax_dp.max_err b.Minmax_dp.max_err;
            check "cap never increases states" true
              (a.Minmax_dp.dp_states <= b.Minmax_dp.dp_states))
          [ 0; 2; 6; 16 ])
      metrics
  done

(* --- bottom-up variant --- *)

let test_bottomup_matches_topdown () =
  for seed = 1 to 10 do
    let data = random_data ~seed:(seed + 200) 32 in
    List.iter
      (fun metric ->
        List.iter
          (fun budget ->
            let top = Minmax_dp.solve ~data ~budget metric in
            let bottom = Minmax_bottomup.solve ~data ~budget metric in
            checkf
              (Printf.sprintf "seed %d B=%d" seed budget)
              top.Minmax_dp.max_err bottom.Minmax_bottomup.max_err)
          [ 0; 1; 3; 8 ])
      metrics
  done

let test_bottomup_paper_example () =
  let data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |] in
  List.iter
    (fun budget ->
      let top = Minmax_dp.solve ~data ~budget Metrics.Abs in
      let bottom = Minmax_bottomup.solve ~data ~budget Metrics.Abs in
      checkf
        (Printf.sprintf "paper B=%d" budget)
        top.Minmax_dp.max_err bottom.Minmax_bottomup.max_err)
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_bottomup_workspace_shrinks () =
  (* Theorem 3.1's space story: the peak live working set must be well
     below the total number of table cells computed. *)
  let data = random_data ~seed:300 256 in
  let s = Minmax_bottomup.solve ~data ~budget:8 Metrics.Abs in
  check
    (Printf.sprintf "peak %d << total %d" s.Minmax_bottomup.peak_live_cells
       s.Minmax_bottomup.total_cells)
    true
    (s.Minmax_bottomup.peak_live_cells * 4 < s.Minmax_bottomup.total_cells)

let test_bottomup_singleton () =
  let s = Minmax_bottomup.solve ~data:[| 42. |] ~budget:1 Metrics.Abs in
  checkf "N=1 B=1" 0. s.Minmax_bottomup.max_err;
  let s0 = Minmax_bottomup.solve ~data:[| 42. |] ~budget:0 Metrics.Abs in
  checkf "N=1 B=0" 42. s0.Minmax_bottomup.max_err

(* --- standard multi-dimensional decomposition --- *)

let test_std_roundtrip () =
  let rng = Prng.create ~seed:400 in
  List.iter
    (fun dims ->
      let a = Ndarray.init ~dims (fun _ -> Prng.float rng 20. -. 10.) in
      let back = Haar_std.reconstruct (Haar_std.decompose a) in
      check
        (Printf.sprintf "roundtrip %dd" (Array.length dims))
        true
        (Ndarray.equal ~eps:1e-8 a back))
    [ [| 8 |]; [| 8; 8 |]; [| 4; 4; 4 |] ]

let test_std_d1_matches_haar1d () =
  let data = random_data ~seed:401 16 in
  let w1 = Haar1d.decompose data in
  let ws =
    Haar_std.decompose (Ndarray.of_flat_array ~dims:[| 16 |] (Array.copy data))
  in
  Array.iteri
    (fun i c ->
      check (Printf.sprintf "coeff %d" i) true
        (Float_util.approx_equal ~eps:1e-9 c (Ndarray.get_flat ws i)))
    w1

let test_std_point () =
  let rng = Prng.create ~seed:402 in
  let a = Ndarray.init ~dims:[| 8; 8 |] (fun _ -> Prng.float rng 10.) in
  let w = Haar_std.decompose a in
  Ndarray.iteri
    (fun idx v -> checkf "std point" v (Haar_std.point ~wavelet:w idx))
    a

let test_std_average_cell () =
  let a = Ndarray.of_flat_array ~dims:[| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let w = Haar_std.decompose a in
  checkf "origin is overall average" 2.5 (Ndarray.get w [| 0; 0 |])

let test_std_differs_from_nonstandard () =
  (* The two bases agree on the overall average but generally differ on
     detail coefficients. *)
  let rng = Prng.create ~seed:403 in
  let a = Ndarray.init ~dims:[| 4; 4 |] (fun _ -> Prng.float rng 10.) in
  let ws = Haar_std.decompose a and wn = Haar_md.decompose a in
  checkf "same average" (Ndarray.get_flat ws 0) (Ndarray.get_flat wn 0);
  check "bases differ somewhere" true (not (Ndarray.equal ~eps:1e-12 ws wn))

let test_std_threshold_l2 () =
  let rng = Prng.create ~seed:404 in
  let a = Signal.grid_bumps ~rng ~side:8 ~bumps:3 ~amplitude:40. in
  let errs =
    List.map
      (fun budget ->
        let coeffs = Haar_std.threshold_l2 ~data:a ~budget in
        check (Printf.sprintf "B=%d size" budget) true
          (List.length coeffs <= budget);
        let approx = Haar_std.reconstruct_from ~dims:(Ndarray.dims a) coeffs in
        Metrics.max_error_md Metrics.Abs ~data:a ~approx)
      [ 1; 4; 16; 64 ]
  in
  let rec non_increasing = function
    | x :: (y :: _ as rest) ->
        check "error shrinks with budget" true (y <= x +. 1e-9);
        non_increasing rest
    | _ -> ()
  in
  non_increasing errs;
  checkf "full budget exact" 0. (List.nth errs 3)

let prop_std_roundtrip =
  QCheck.Test.make ~name:"standard decomposition roundtrip (2d)" ~count:40
    QCheck.(array_of_size (Gen.return 16) (float_range (-100.) 100.))
    (fun flat ->
      let a = Ndarray.of_flat_array ~dims:[| 4; 4 |] flat in
      Ndarray.equal ~eps:1e-8 a (Haar_std.reconstruct (Haar_std.decompose a)))

let prop_bottomup_equals_topdown =
  QCheck.Test.make ~name:"bottom-up value = top-down value" ~count:50
    QCheck.(
      pair
        (array_of_size (Gen.oneofl [ 4; 8; 16 ]) (float_range (-20.) 20.))
        (int_bound 5))
    (fun (data, budget) ->
      let top = (Minmax_dp.solve ~data ~budget Metrics.Abs).Minmax_dp.max_err in
      let bottom =
        (Minmax_bottomup.solve ~data ~budget Metrics.Abs)
          .Minmax_bottomup.max_err
      in
      Float_util.approx_equal ~eps:1e-9 top bottom)

let test_soak_large_1d () =
  (* Scale check: N = 1024. The two independent evaluation orders must
     agree on the optimum, and the synopsis must achieve it. *)
  let rng = Prng.create ~seed:500 in
  let data = Signal.random_walk ~rng ~n:1024 ~step:2. in
  let budget = 16 in
  let top = Minmax_dp.solve ~data ~budget Metrics.Abs in
  let bottom = Minmax_bottomup.solve ~data ~budget Metrics.Abs in
  checkf "1024 top-down = bottom-up" top.Minmax_dp.max_err
    bottom.Minmax_bottomup.max_err;
  let measured =
    Wavesyn_synopsis.Metrics.of_synopsis Metrics.Abs ~data top.Minmax_dp.synopsis
  in
  checkf "1024 synopsis achieves optimum" top.Minmax_dp.max_err measured

let test_soak_additive_32x32 () =
  (* 32x32 2-D run of the additive scheme: bounded by the L2-greedy
     upper bound plus its guarantee, budget respected. *)
  let rng = Prng.create ~seed:501 in
  let grid = Signal.grid_bumps ~rng ~side:32 ~bumps:6 ~amplitude:60. in
  let tree = Wavesyn_haar.Md_tree.of_data grid in
  let budget = 20 in
  let epsilon = 0.2 in
  let r =
    Wavesyn_core.Approx_additive.solve_tree ~tree ~budget ~epsilon Metrics.Abs
  in
  let l2 =
    Wavesyn_synopsis.Metrics.of_md_synopsis Metrics.Abs ~data:grid
      (Wavesyn_baselines.Greedy_l2.threshold_md ~data:grid ~budget)
  in
  let slack =
    Wavesyn_core.Approx_additive.guarantee_bound ~tree ~epsilon Metrics.Abs
  in
  check "budget" true
    (Wavesyn_synopsis.Synopsis.Md.size r.Wavesyn_core.Approx_additive.synopsis
    <= budget);
  check
    (Printf.sprintf "measured %g within l2 %g + slack %g"
       r.Wavesyn_core.Approx_additive.measured l2 slack)
    true
    (r.Wavesyn_core.Approx_additive.measured <= l2 +. slack +. 1e-9)

let () =
  Alcotest.run "variants"
    [
      ( "ablation knobs",
        [
          Alcotest.test_case "split strategies agree" `Quick test_split_strategies_agree;
          Alcotest.test_case "budget cap agrees" `Quick test_cap_budget_agrees;
        ] );
      ( "bottom-up",
        [
          Alcotest.test_case "matches top-down" `Quick test_bottomup_matches_topdown;
          Alcotest.test_case "paper example" `Quick test_bottomup_paper_example;
          Alcotest.test_case "workspace shrinks" `Quick test_bottomup_workspace_shrinks;
          Alcotest.test_case "singleton" `Quick test_bottomup_singleton;
          QCheck_alcotest.to_alcotest prop_bottomup_equals_topdown;
          Alcotest.test_case "soak: N=1024" `Slow test_soak_large_1d;
          Alcotest.test_case "soak: 32x32 additive" `Slow test_soak_additive_32x32;
        ] );
      ( "standard decomposition",
        [
          Alcotest.test_case "roundtrip" `Quick test_std_roundtrip;
          Alcotest.test_case "D=1 matches haar1d" `Quick test_std_d1_matches_haar1d;
          Alcotest.test_case "point" `Quick test_std_point;
          Alcotest.test_case "average" `Quick test_std_average_cell;
          Alcotest.test_case "differs from nonstandard" `Quick test_std_differs_from_nonstandard;
          Alcotest.test_case "l2 threshold" `Quick test_std_threshold_l2;
          QCheck_alcotest.to_alcotest prop_std_roundtrip;
        ] );
    ]
