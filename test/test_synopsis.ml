(* Tests for the synopsis representation, metrics and range queries. *)

module Haar1d = Wavesyn_haar.Haar1d
module Synopsis = Wavesyn_synopsis.Synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Range_query = Wavesyn_synopsis.Range_query
module Ndarray = Wavesyn_util.Ndarray
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

let paper_data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |]
let paper_wavelet = Haar1d.decompose paper_data

let full_synopsis =
  Synopsis.of_wavelet ~wavelet:paper_wavelet [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* --- Synopsis --- *)

let test_make_validates () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Synopsis.make: coefficient index out of range")
    (fun () -> ignore (Synopsis.make ~n:8 [ (9, 1.) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Synopsis.make: duplicate coefficient index")
    (fun () -> ignore (Synopsis.make ~n:8 [ (3, 1.); (3, 2.) ]));
  Alcotest.check_raises "non pow2 domain"
    (Invalid_argument "Synopsis.make: domain size must be a power of two")
    (fun () -> ignore (Synopsis.make ~n:6 []))

let test_zero_coeffs_dropped () =
  let s = Synopsis.make ~n:8 [ (1, 0.); (2, 3.) ] in
  checki "size counts only non-zeros" 1 (Synopsis.size s);
  check "zero not member" false (Synopsis.mem s 1);
  check "non-zero member" true (Synopsis.mem s 2)

let test_full_reconstruction () =
  let approx = Synopsis.reconstruct full_synopsis in
  Array.iteri (fun i d -> checkf (Printf.sprintf "cell %d" i) d approx.(i)) paper_data

let test_point_matches_reconstruct () =
  let s = Synopsis.of_wavelet ~wavelet:paper_wavelet [ 0; 1; 5 ] in
  let approx = Synopsis.reconstruct s in
  for i = 0 to 7 do
    checkf (Printf.sprintf "point %d" i) approx.(i) (Synopsis.reconstruct_point s i)
  done

let test_empty_synopsis () =
  let s = Synopsis.make ~n:8 [] in
  checki "empty size" 0 (Synopsis.size s);
  check "reconstruct zeros" true
    (Array.for_all (fun x -> x = 0.) (Synopsis.reconstruct s))

let test_serialization_roundtrip () =
  let s = Synopsis.of_wavelet ~wavelet:paper_wavelet [ 0; 2; 6 ] in
  let s' = Synopsis.of_string (Synopsis.to_string s) in
  checki "same n" (Synopsis.n s) (Synopsis.n s');
  check "same coeffs" true (Synopsis.coeffs s = Synopsis.coeffs s')

let test_serialization_rejects_garbage () =
  check "bad input raises" true
    (try
       ignore (Synopsis.of_string "8 foo:bar");
       false
     with Failure _ -> true)

let test_describe () =
  let s = Synopsis.make ~n:8 [ (0, 2.75); (1, -1.25) ] in
  check "describe" true (Synopsis.describe s = "{c0=2.75; c1=-1.25}")

let test_md_synopsis_roundtrip () =
  let rng = Prng.create ~seed:8 in
  let data = Ndarray.init ~dims:[| 4; 4 |] (fun _ -> Prng.float rng 10.) in
  let tree = Wavesyn_haar.Md_tree.of_data data in
  let all = Wavesyn_haar.Md_tree.all_coeffs tree in
  let syn = Synopsis.Md.of_tree tree all in
  let approx = Synopsis.Md.reconstruct syn in
  check "full md reconstruction" true (Ndarray.equal ~eps:1e-8 data approx);
  (* cell reconstruction agrees with full reconstruction *)
  Ndarray.iteri
    (fun idx v -> checkf "md cell" v (Synopsis.Md.reconstruct_cell syn idx))
    approx

let test_md_validates () =
  Alcotest.check_raises "md out of range"
    (Invalid_argument "Synopsis.Md.make: coefficient position out of range")
    (fun () -> ignore (Synopsis.Md.make ~dims:[| 2; 2 |] [ (4, 1.) ]))

(* --- Metrics --- *)

let test_denominator () =
  checkf "abs" 1. (Metrics.denominator Metrics.Abs 42.);
  checkf "rel large" 42. (Metrics.denominator (Metrics.Rel { sanity = 5. }) 42.);
  checkf "rel small" 5. (Metrics.denominator (Metrics.Rel { sanity = 5. }) 2.);
  checkf "rel negative" 42. (Metrics.denominator (Metrics.Rel { sanity = 5. }) (-42.))

let test_metric_validation () =
  Alcotest.check_raises "non-positive sanity"
    (Invalid_argument "Metrics: sanity bound must be positive")
    (fun () ->
      ignore (Metrics.denominator (Metrics.Rel { sanity = 0. }) 1.))

let test_max_error () =
  let data = [| 10.; 0.; -5. |] in
  let approx = [| 9.; 2.; -5. |] in
  checkf "max abs" 2. (Metrics.max_error Metrics.Abs ~data ~approx);
  (* rel errors: 1/10, 2/1, 0/5 -> 2 *)
  checkf "max rel" 2.
    (Metrics.max_error (Metrics.Rel { sanity = 1. }) ~data ~approx)

let test_summary () =
  let data = [| 4.; 2.; 0.; 0. |] in
  let approx = [| 3.; 2.; 1.; 0. |] in
  let s = Metrics.summary ~sanity:1. ~data ~approx () in
  checkf "max_abs" 1. s.Metrics.max_abs;
  checkf "mean_abs" 0.5 s.Metrics.mean_abs;
  checkf "rms" (Float.sqrt 0.5) s.Metrics.rms;
  checki "argmax_abs" 0 s.Metrics.argmax_abs;
  checki "argmax_rel is the small value" 2 s.Metrics.argmax_rel

let test_length_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Metrics: data / approximation length mismatch")
    (fun () ->
      ignore (Metrics.max_error Metrics.Abs ~data:[| 1. |] ~approx:[| 1.; 2. |]))

(* --- Range queries --- *)

let test_range_sum_exact () =
  checkf "full" 22. (Range_query.range_sum_exact paper_data ~lo:0 ~hi:7);
  checkf "middle" 10. (Range_query.range_sum_exact paper_data ~lo:3 ~hi:5);
  checkf "single" 3. (Range_query.range_sum_exact paper_data ~lo:4 ~hi:4)

let test_range_sum_full_synopsis_is_exact () =
  for lo = 0 to 7 do
    for hi = lo to 7 do
      checkf
        (Printf.sprintf "range [%d,%d]" lo hi)
        (Range_query.range_sum_exact paper_data ~lo ~hi)
        (Range_query.range_sum full_synopsis ~lo ~hi)
    done
  done

let test_range_avg_and_selectivity () =
  checkf "avg" (22. /. 8.) (Range_query.range_avg full_synopsis ~lo:0 ~hi:7);
  checkf "selectivity" (10. /. 22.)
    (Range_query.selectivity full_synopsis ~lo:3 ~hi:5)

let test_range_bounds_checked () =
  Alcotest.check_raises "bad range"
    (Invalid_argument "Range_query: invalid range bounds")
    (fun () -> ignore (Range_query.range_sum full_synopsis ~lo:5 ~hi:2))

(* The query server's hot path (docs/SERVING.md): the range shapes a
   remote client can legally send, pinned on a {e thresholded} synopsis
   (retained detail coefficients partially covering the range), plus
   every empty/out-of-domain shape, which must raise — the server maps
   the exception to a structured out-of-range reply. *)
let test_range_server_hot_path_corners () =
  let syn = Synopsis.of_wavelet ~wavelet:paper_wavelet [ 0; 1; 5 ] in
  let n = Synopsis.n syn in
  (* Single-cell ranges agree with point reconstruction everywhere. *)
  for i = 0 to n - 1 do
    checkf
      (Printf.sprintf "single cell [%d,%d]" i i)
      (Synopsis.reconstruct_point syn i)
      (Range_query.range_sum syn ~lo:i ~hi:i)
  done;
  (* The full-domain range: detail coefficients cancel over their whole
     support, so only c0 contributes, n * c0. *)
  checkf "full domain is n*c0" (8. *. 2.75)
    (Range_query.range_sum syn ~lo:0 ~hi:(n - 1));
  (* Prefix sums stitch: sum[0,i] + sum[i+1,n-1] = sum[0,n-1]. *)
  for i = 0 to n - 2 do
    checkf
      (Printf.sprintf "prefix split at %d" i)
      (Range_query.range_sum syn ~lo:0 ~hi:(n - 1))
      (Range_query.range_sum syn ~lo:0 ~hi:i
      +. Range_query.range_sum syn ~lo:(i + 1) ~hi:(n - 1))
  done;
  (* Every illegal shape raises (empty lo>hi, either bound outside). *)
  List.iter
    (fun (lo, hi) ->
      Alcotest.check_raises
        (Printf.sprintf "range [%d,%d] rejected" lo hi)
        (Invalid_argument "Range_query: invalid range bounds")
        (fun () -> ignore (Range_query.range_sum syn ~lo ~hi)))
    [ (3, 2); (-1, 4); (0, 8); (8, 8); (-2, -1) ];
  (* An empty (budget-0) synopsis still answers: everything is 0. *)
  let empty = Synopsis.make ~n:8 [] in
  checkf "empty synopsis sums to zero" 0.
    (Range_query.range_sum empty ~lo:0 ~hi:7)

let test_selectivity_zero_total () =
  let s = Synopsis.make ~n:8 [] in
  checkf "zero total" 0. (Range_query.selectivity s ~lo:0 ~hi:3)

let test_md_range_sum_full_synopsis () =
  let rng = Prng.create ~seed:9 in
  let data = Ndarray.init ~dims:[| 8; 8 |] (fun _ -> Prng.float rng 10. -. 5.) in
  let tree = Wavesyn_haar.Md_tree.of_data data in
  let syn = Synopsis.Md.of_tree tree (Wavesyn_haar.Md_tree.all_coeffs tree) in
  List.iter
    (fun ranges ->
      let exact = Range_query.range_sum_exact_md data ~ranges in
      let approx = Range_query.range_sum_md syn ~ranges in
      check
        (Printf.sprintf "md range (%g vs %g)" exact approx)
        true
        (Float_util.approx_equal ~eps:1e-6 exact approx))
    [
      [| (0, 7); (0, 7) |];
      [| (0, 0); (0, 0) |];
      [| (2, 5); (1, 6) |];
      [| (3, 3); (0, 7) |];
      [| (1, 2); (3, 3) |];
    ]

let prop_of_string_never_crashes =
  (* Fuzz: arbitrary strings either parse or raise Failure /
     Invalid_argument - never anything else. *)
  QCheck.Test.make ~name:"of_string total on garbage" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 40))
    (fun s ->
      match Synopsis.of_string s with
      | (_ : Synopsis.t) -> true
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true)

(* --- wavelet-domain marginalization --- *)

module Marginal = Wavesyn_synopsis.Marginal
module Md_tree = Wavesyn_haar.Md_tree

let test_marginal_full_synopsis_exact () =
  let rng = Prng.create ~seed:71 in
  let data = Ndarray.init ~dims:[| 8; 8 |] (fun _ -> Prng.float rng 10. -. 5.) in
  let tree = Md_tree.of_data data in
  let syn = Synopsis.Md.of_tree tree (Md_tree.all_coeffs tree) in
  List.iter
    (fun dim ->
      let m = Marginal.sum_out_2d syn ~dim in
      let approx = Synopsis.reconstruct m in
      let exact = Marginal.marginal_exact data ~dim in
      Array.iteri
        (fun i x ->
          check
            (Printf.sprintf "dim %d cell %d" dim i)
            true
            (Float_util.approx_equal ~eps:1e-8 x approx.(i)))
        exact)
    [ 0; 1 ]

let test_marginal_2x2_by_hand () =
  let data = Ndarray.of_flat_array ~dims:[| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let tree = Md_tree.of_data data in
  let syn = Synopsis.Md.of_tree tree (Md_tree.all_coeffs tree) in
  (* Sum over rows (dim 0): marginal over columns = [4, 6]. *)
  let m = Synopsis.reconstruct (Marginal.sum_out_2d syn ~dim:0) in
  checkf "col 0" 4. m.(0);
  checkf "col 1" 6. m.(1);
  (* Sum over columns (dim 1): marginal over rows = [3, 7]. *)
  let m = Synopsis.reconstruct (Marginal.sum_out_2d syn ~dim:1) in
  checkf "row 0" 3. m.(0);
  checkf "row 1" 7. m.(1)

let test_marginal_validation () =
  let syn = Synopsis.Md.make ~dims:[| 2; 2 |] [] in
  Alcotest.check_raises "bad dim" (Invalid_argument "Marginal: dim must be 0 or 1")
    (fun () -> ignore (Marginal.sum_out_2d syn ~dim:2))

let prop_marginal_commutes =
  (* marginal (reconstruct synopsis) = reconstruct (marginal synopsis),
     for ANY retained subset - the coefficient-domain roll-up is exact. *)
  QCheck.Test.make ~name:"marginalization commutes with reconstruction" ~count:40
    QCheck.(
      pair
        (array_of_size (Gen.return 16) (float_range (-10.) 10.))
        (pair (int_bound 1) (int_bound 15)))
    (fun (flat, (dim, keep_mask)) ->
      let data = Ndarray.of_flat_array ~dims:[| 4; 4 |] flat in
      let tree = Md_tree.of_data data in
      let all = Md_tree.all_coeffs tree in
      let some = List.filteri (fun i _ -> (keep_mask lsr (i mod 4)) land 1 = 1 || i mod 5 = 0) all in
      let syn = Synopsis.Md.make ~dims:[| 4; 4 |] some in
      let recon = Synopsis.Md.reconstruct syn in
      let lhs = Marginal.marginal_exact recon ~dim in
      let rhs = Synopsis.reconstruct (Marginal.sum_out_2d syn ~dim) in
      Array.for_all2 (fun a b -> Float_util.approx_equal ~eps:1e-7 a b) lhs rhs)

let prop_range_sum_matches_reconstruction =
  QCheck.Test.make ~name:"synopsis range sum = sum of reconstruction" ~count:60
    QCheck.(
      triple
        (array_of_size (Gen.return 16) (float_range (-50.) 50.))
        (int_bound 15) (int_bound 15))
    (fun (data, a, b) ->
      let lo = Stdlib.min a b and hi = Stdlib.max a b in
      let w = Haar1d.decompose data in
      let syn = Synopsis.of_wavelet ~wavelet:w [ 0; 1; 3; 7; 9 ] in
      let approx = Synopsis.reconstruct syn in
      let direct = Range_query.range_sum_exact approx ~lo ~hi in
      let via_syn = Range_query.range_sum syn ~lo ~hi in
      Float_util.approx_equal ~eps:1e-6 direct via_syn)

let prop_md_range_matches_reconstruction =
  QCheck.Test.make ~name:"md synopsis range sum = sum of reconstruction" ~count:40
    QCheck.(array_of_size (Gen.return 16) (float_range (-10.) 10.))
    (fun flat ->
      let data = Ndarray.of_flat_array ~dims:[| 4; 4 |] flat in
      let tree = Wavesyn_haar.Md_tree.of_data data in
      let all = Wavesyn_haar.Md_tree.all_coeffs tree in
      let some = List.filteri (fun i _ -> i mod 2 = 0) all in
      let syn = Synopsis.Md.of_tree tree some in
      let approx = Synopsis.Md.reconstruct syn in
      let ranges = [| (1, 2); (0, 3) |] in
      Float_util.approx_equal ~eps:1e-6
        (Range_query.range_sum_exact_md approx ~ranges)
        (Range_query.range_sum_md syn ~ranges))

let () =
  Alcotest.run "synopsis"
    [
      ( "synopsis",
        [
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "zero coefficients dropped" `Quick test_zero_coeffs_dropped;
          Alcotest.test_case "full reconstruction" `Quick test_full_reconstruction;
          Alcotest.test_case "point = reconstruct" `Quick test_point_matches_reconstruct;
          Alcotest.test_case "empty synopsis" `Quick test_empty_synopsis;
          Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
          Alcotest.test_case "serialization rejects garbage" `Quick test_serialization_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_of_string_never_crashes;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "md roundtrip" `Quick test_md_synopsis_roundtrip;
          Alcotest.test_case "md validation" `Quick test_md_validates;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "denominator" `Quick test_denominator;
          Alcotest.test_case "metric validation" `Quick test_metric_validation;
          Alcotest.test_case "max error" `Quick test_max_error;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
        ] );
      ( "range queries",
        [
          Alcotest.test_case "exact sums" `Quick test_range_sum_exact;
          Alcotest.test_case "full synopsis exact" `Quick test_range_sum_full_synopsis_is_exact;
          Alcotest.test_case "avg and selectivity" `Quick test_range_avg_and_selectivity;
          Alcotest.test_case "bounds checked" `Quick test_range_bounds_checked;
          Alcotest.test_case "server hot-path corners" `Quick
            test_range_server_hot_path_corners;
          Alcotest.test_case "zero total" `Quick test_selectivity_zero_total;
          Alcotest.test_case "md full synopsis" `Quick test_md_range_sum_full_synopsis;
          QCheck_alcotest.to_alcotest prop_range_sum_matches_reconstruction;
          QCheck_alcotest.to_alcotest prop_md_range_matches_reconstruction;
        ] );
      ( "marginalization",
        [
          Alcotest.test_case "full synopsis exact" `Quick test_marginal_full_synopsis_exact;
          Alcotest.test_case "2x2 by hand" `Quick test_marginal_2x2_by_hand;
          Alcotest.test_case "validation" `Quick test_marginal_validation;
          QCheck_alcotest.to_alcotest prop_marginal_commutes;
        ] );
    ]
