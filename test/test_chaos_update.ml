(* Live-update chaos suite: crash-consistent streaming re-thresholding
   under write traffic.

   The headline proof: a live server killed mid-update-storm recovers
   (journal-before-apply, round-atomic staging) to a store from which a
   restarted server — after the client resends its unanswered write
   frames — serves loadgen read transcripts byte-identical to a run
   with no failure at all, at pool sizes 1 and 4; the same identity
   holds through a warm-standby failover promotion, and through a kill
   landing between the store promotion and its HANDOFF-ACK.

   Run via `dune runtest` or in isolation via `dune build
   @chaos-update`. A watchdog alarm fails the whole suite rather than
   letting a hung socket test wedge the runner. *)

module Validate = Wavesyn_robust.Validate
module Journal = Wavesyn_robust.Journal
module Snapshot = Wavesyn_robust.Snapshot
module Supervisor = Wavesyn_robust.Supervisor
module Stream_synopsis = Wavesyn_stream.Stream_synopsis
module Synopsis = Wavesyn_synopsis.Synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Prng = Wavesyn_util.Prng
module Pool = Wavesyn_par.Pool
module Wire = Wavesyn_server.Wire
module Server = Wavesyn_server.Server
module Client = Wavesyn_server.Client
module Failover = Wavesyn_server.Failover
module Replica = Wavesyn_server.Replica
module Loadgen = Wavesyn_server.Loadgen
module Registry = Wavesyn_obs.Registry

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Watchdog: a hung socket test must fail the suite, not wedge it. *)
let () =
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         prerr_endline
           "chaos-update watchdog: a socket test hung past the deadline";
         exit 124));
  ignore (Unix.alarm 300)

(* --- harness --- *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wavesyn_chaos_update_%d_%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir dir 0o755;
    dir

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "%s/wavesyn-chaos-update-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !counter

let must = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Validate.to_string e)

(* Read one integer counter out of a rendered metrics table; [name]
   matches with or without a label set. *)
let counter_value table name =
  let value_of row =
    match List.filter (fun tok -> tok <> "") (String.split_on_char ' ' row) with
    | _kind :: field :: value :: _
      when field = name
           || (String.length field > String.length name
              && String.sub field 0 (String.length name + 1) = name ^ "{") ->
        int_of_string_opt value
    | _ -> None
  in
  match List.filter_map value_of (String.split_on_char '\n' table) with
  | v :: _ -> v
  | [] -> Alcotest.fail (name ^ " missing from the metrics table")

(* Canonical state fingerprint: two stores hold the same acknowledged
   history iff the encodings of their coefficient states are equal. *)
let fingerprint sup =
  Snapshot.encode
    (Snapshot.of_stream ~seq:(Supervisor.seq sup) (Supervisor.stream sup))

(* A primary store with [updates] seeded point updates acknowledged.
   Deterministic: two calls with the same arguments build two stores
   with byte-identical journals, which is how the crash runs get an
   initial state equal to their failure-free reference. *)
let build_store ~dir ~n ~updates ~seed () =
  let scfg =
    Supervisor.config ~checkpoint_every:1_000_000 ~recut_every:1_000_000
      ~sync:false ~dir ~n ~budget:8 Metrics.Abs
  in
  let sup = must (Supervisor.open_store scfg) in
  let rng = Prng.create ~seed in
  for _ = 1 to updates do
    ignore
      (must
         (Supervisor.ingest sup ~i:(Prng.int rng n)
            ~delta:(float_of_int (Prng.int rng 21 - 10) /. 4.)))
  done;
  Supervisor.close sup

(* Recover and reopen a store for live serving, exactly as
   `server --listen --store` wires it: the supervisor journals writes
   (its own re-cut cadence disabled — the server's incremental solver
   owns the synopsis), and the recovered data seeds the server. *)
let open_live dir =
  let r = must (Supervisor.recover ~dir) in
  let scfg =
    {
      r.Supervisor.r_config with
      Supervisor.checkpoint_every = 1_000_000;
      recut_every = 1_000_000;
      sync = false;
    }
  in
  let sup = must (Supervisor.open_store scfg) in
  let data = Stream_synopsis.current_data (Supervisor.stream sup) in
  let ship =
    {
      Server.ship_dir = dir;
      ship_seq = Supervisor.seq sup;
      ship_manifest = Supervisor.manifest_text scfg;
    }
  in
  (sup, data, ship)

let spawn_server server = Domain.spawn (fun () -> Server.run server)

let join_server runner =
  match Domain.join runner with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("server run: " ^ Validate.to_string e)

let connect ?timeout_ms path =
  match Client.connect ~wait_ms:5000. ?timeout_ms path with
  | Ok c -> c
  | Error e -> Alcotest.fail (Validate.to_string e)

let shutdown_via path =
  let c = connect path in
  ignore (Client.request_one c Wire.Shutdown);
  Client.close c

(* --- the deterministic write/read schedule --- *)

(* The write schedule is a fixed list of frames — single UPDATEs and
   INGEST storms — drawn from a seeded Prng, so the crash runs and
   their references send byte-identical traffic. *)
let write_frames ~seed ~n ~frames =
  let rng = Prng.create ~seed in
  List.init frames (fun _ ->
      if Prng.int rng 3 = 0 then
        Wire.Ingest
          (List.init
             (2 + Prng.int rng 3)
             (fun _ -> (Prng.int rng n, Prng.float rng 2.0 -. 1.0)))
      else Wire.Update { i = Prng.int rng n; delta = Prng.float rng 2.0 -. 1.0 })

(* Send the write frames one at a time, tracking acks frame by frame.
   Returns [(acked, unsent)]: the highest ACKED sequence seen and the
   frames that were not acknowledged (the one the crash left
   unanswered plus everything after it). On a healthy server [unsent]
   is empty. *)
let send_writes rpc frames =
  let rec go acked = function
    | [] -> (acked, [])
    | frame :: rest -> (
        match rpc frame with
        | Ok [ Wire.Acked { seq } ] -> go seq rest
        | Ok other ->
            Alcotest.fail
              (Printf.sprintf "write frame answered oddly: %s"
                 (String.concat "; " (List.map Wire.describe_reply other)))
        | Error _ -> (acked, frame :: rest))
  in
  go 0 frames

(* The read phase: a seeded loadgen schedule (reads only), returning
   the transcript for byte comparison. *)
let read_storm ~seed ~requests ~batch ~n rpc =
  let buf = Buffer.create 4096 in
  let summary =
    must
      (Loadgen.run ~rpc ~seed ~requests ~batch ~n ~mix:Loadgen.default_mix
         ~out:(Buffer.add_string buf) ())
  in
  (Buffer.contents buf, summary)

(* --- failure-free write/read round-trip (the reference machinery,
   and the exactness checks that only make sense on a live wire) --- *)

let test_live_write_read () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  build_store ~dir ~n:32 ~updates:10 ~seed:3 ();
  let sup, data, ship = open_live dir in
  Fun.protect ~finally:(fun () -> Supervisor.close sup) @@ fun () ->
  let path = sock_path () in
  let server =
    Server.create
      (Server.config ~budget:8 ~ship ~role:"primary" ~store:sup
         ~recut_every:4 ~path data)
  in
  let runner = spawn_server server in
  Fun.protect ~finally:(fun () -> shutdown_via path; join_server runner)
  @@ fun () ->
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* Single UPDATE: journaled, acked with its sequence. *)
  (match Client.request_one c (Wire.Update { i = 3; delta = 0.5 }) with
  | Ok (Wire.Acked { seq }) -> checki "first update acked" 11 seq
  | Ok r -> Alcotest.fail ("update answered: " ^ Wire.describe_reply r)
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* A batch mixing writes and reads reads its own writes: the round
     applies every staged write before any read evaluates. *)
  (match
     Client.request c
       (Wire.Batch [ Wire.Update { i = 3; delta = 0.25 }; Wire.Point 3 ])
   with
  | Ok [ Wire.Acked { seq }; Wire.Value _ ] -> checki "batch write acked" 12 seq
  | Ok rs ->
      Alcotest.fail
        ("batch answered: "
        ^ String.concat "; " (List.map Wire.describe_reply rs))
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* INGEST storm: atomic, acked with the last sequence. *)
  (match
     Client.request_one c (Wire.Ingest [ (2, 0.5); (7, -0.25); (4, 1.5) ])
   with
  | Ok (Wire.Acked { seq }) -> checki "storm acked last seq" 15 seq
  | Ok r -> Alcotest.fail ("storm answered: " ^ Wire.describe_reply r)
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* Validation: out-of-domain rejected as a structured error, nothing
     journaled; a storm with one bad delta rejects atomically. *)
  (match Client.request_one c (Wire.Update { i = 99; delta = 1.0 }) with
  | Ok (Wire.Error { code = Wire.Out_of_range; _ }) -> ()
  | Ok r -> Alcotest.fail ("bad update answered: " ^ Wire.describe_reply r)
  | Error e -> Alcotest.fail (Validate.to_string e));
  (match
     Client.request_one c (Wire.Ingest [ (1, 0.5); (99, 1.0); (2, 0.5) ])
   with
  | Ok (Wire.Error { code = Wire.Out_of_range; _ }) -> ()
  | Ok r -> Alcotest.fail ("bad storm answered: " ^ Wire.describe_reply r)
  | Error e -> Alcotest.fail (Validate.to_string e));
  checki "rejections journaled nothing" 15 (Supervisor.seq sup);
  (* The served bound is sound: every point read errs by at most the
     server's stated bound against the store's true current data. *)
  let true_data = Stream_synopsis.current_data (Supervisor.stream sup) in
  let bound = (Server.stats server).Server.bound in
  check "a live server states a positive bound" true (bound >= 0.);
  for i = 0 to Array.length true_data - 1 do
    match Client.request_one c (Wire.Point i) with
    | Ok (Wire.Value v) ->
        if Float.abs (v -. true_data.(i)) > bound +. 1e-9 then
          Alcotest.fail
            (Printf.sprintf "point %d: |%g - %g| > stated bound %g" i v
               true_data.(i) bound)
    | Ok r -> Alcotest.fail ("point answered: " ^ Wire.describe_reply r)
    | Error e -> Alcotest.fail (Validate.to_string e)
  done;
  (* recut_every = 4 with 5 applied updates: the cadenced full re-cut
     fired on the write path (on top of the initial cut), and at least
     one earlier round refreshed incrementally. *)
  let table = Registry.render_table (Server.registry server) in
  check "cadenced full re-cut fired" true (counter_value table "recut.full" >= 2);
  check "incremental refresh fired" true
    (counter_value table "recut.incremental" >= 1);
  checki "every applied update counted" 5 (Server.stats server).Server.updates

(* A read-only server (no store) refuses writes in-band. *)
let test_read_only_refuses_writes () =
  let path = sock_path () in
  let rng = Prng.create ~seed:5 in
  let data = Array.init 32 (fun _ -> Prng.float rng 50.) in
  let server = Server.create (Server.config ~budget:8 ~path data) in
  let runner = spawn_server server in
  Fun.protect ~finally:(fun () -> shutdown_via path; join_server runner)
  @@ fun () ->
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.request_one c (Wire.Update { i = 1; delta = 1.0 }) with
  | Ok (Wire.Error { code = Wire.Unanswerable; _ }) -> ()
  | Ok r -> Alcotest.fail ("read-only answered: " ^ Wire.describe_reply r)
  | Error e -> Alcotest.fail (Validate.to_string e)

(* --- the headline: crash mid-storm, whole round lost, resend,
   byte-identical reads --- *)

(* Run the full schedule (writes then reads) against a healthy live
   server over [dir]; returns the read transcript and the final store
   fingerprint. *)
let reference_run ~dir ~domains ~recut_every ~wseed ~wframes ~rseed ~requests
    ~batch =
  let sup, data, ship = open_live dir in
  Fun.protect ~finally:(fun () -> Supervisor.close sup) @@ fun () ->
  let n = Array.length data in
  let path = sock_path () in
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let server =
    Server.create ~pool
      (Server.config ~budget:8 ~queue_bound:64 ~ship ~role:"primary"
         ~store:sup ~recut_every ~path data)
  in
  let runner = spawn_server server in
  Fun.protect ~finally:(fun () -> shutdown_via path; join_server runner)
  @@ fun () ->
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let acked, unsent =
    send_writes (Client.request c) (write_frames ~seed:wseed ~n ~frames:wframes)
  in
  check "failure-free run acks every write" true (unsent = []);
  checki "failure-free run acks in sequence" acked (Supervisor.seq sup);
  let transcript, _ = read_storm ~seed:rseed ~requests ~batch ~n (Client.request c) in
  (transcript, fingerprint sup)

(* Kill the primary mid-storm ([crash_after] counts request frames),
   recover its store, restart, resend the unacknowledged frames, read.
   Asserts the acked prefix survived and nothing unacked leaked. *)
let crash_recover_run ~dir ~domains ~recut_every ~crash_after ~wseed ~wframes
    ~rseed ~requests ~batch =
  let sup, data, ship = open_live dir in
  let n = Array.length data in
  let seq0 = Supervisor.seq sup in
  let path = sock_path () in
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let server =
    Server.create ~pool
      (Server.config ~budget:8 ~queue_bound:64 ~ship ~role:"primary"
         ~store:sup ~recut_every ~crash_after ~path data)
  in
  let runner = spawn_server server in
  let c = connect path in
  let frames = write_frames ~seed:wseed ~n ~frames:wframes in
  let acked, unsent = send_writes (Client.request c) frames in
  Client.close c;
  join_server runner;
  check "primary stopped at the simulated kill" true (Server.crashed server);
  check "the kill left frames unacknowledged" true (unsent <> []);
  (* Simulated process death: drop the store without flushing. *)
  Supervisor.crash sup;
  (* Recovery holds exactly the acked prefix: the crashed round staged
     its writes but journaled nothing, so the unanswered frame (and
     everything after it) is simply absent — not partially applied. *)
  let r = must (Supervisor.recover ~dir) in
  checki "recovery = the acked prefix, nothing more" (Stdlib.max acked seq0)
    r.Supervisor.r_seq;
  (* Restart over the recovered store; the client resends every frame
     it holds no ack for — exactly-once lands on the at-most-once
     journal. *)
  let sup2, data2, ship2 = open_live dir in
  Fun.protect ~finally:(fun () -> Supervisor.close sup2) @@ fun () ->
  let path2 = sock_path () in
  let server2 =
    Server.create
      (Server.config ~budget:8 ~queue_bound:64 ~ship:ship2 ~role:"primary"
         ~store:sup2 ~recut_every ~path:path2 data2)
  in
  let runner2 = spawn_server server2 in
  Fun.protect ~finally:(fun () -> shutdown_via path2; join_server runner2)
  @@ fun () ->
  let c2 = connect path2 in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  let _, still_unsent = send_writes (Client.request c2) unsent in
  check "resend completes" true (still_unsent = []);
  let transcript, _ =
    read_storm ~seed:rseed ~requests ~batch ~n (Client.request c2)
  in
  (transcript, fingerprint sup2)

let test_crash_recover_byte_identity () =
  (* The kill lands on the very first write frame: the whole storm is
     unanswered, recovery restores the pre-storm state, and the resend
     replays the entire schedule — so the restarted server's
     incremental path (initial full cut + per-round refreshes) walks
     exactly the reference's path. The default-style cadence (8) fires
     full re-cuts mid-schedule in both runs at the same write counts. *)
  let wseed = 11 and wframes = 12 and rseed = 7 and requests = 32 and batch = 4 in
  List.iter
    (fun domains ->
      let tag = Printf.sprintf " (pool %d)" domains in
      let dir_ref = temp_dir () and dir_crash = temp_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir_ref; rm_rf dir_crash)
      @@ fun () ->
      build_store ~dir:dir_ref ~n:64 ~updates:16 ~seed:6 ();
      build_store ~dir:dir_crash ~n:64 ~updates:16 ~seed:6 ();
      let reference, ref_state =
        reference_run ~dir:dir_ref ~domains ~recut_every:8 ~wseed ~wframes
          ~rseed ~requests ~batch
      in
      let transcript, state =
        crash_recover_run ~dir:dir_crash ~domains ~recut_every:8
          ~crash_after:1 ~wseed ~wframes ~rseed ~requests ~batch
      in
      checks ("store state byte-identical after recovery" ^ tag) ref_state state;
      checks ("read transcript byte-identical after recovery" ^ tag) reference
        transcript)
    [ 1; 4 ]

let test_crash_mid_schedule_acked_prefix () =
  (* The kill lands mid-schedule with acked writes behind it. With a
     per-round full re-cut cadence the serving synopsis is a pure
     function of the store state, so recovery at {e any} frame
     boundary is transcript-invisible — and the acked-prefix assertion
     inside [crash_recover_run] pins the durability half of the
     claim. *)
  let wseed = 13 and wframes = 10 and rseed = 9 and requests = 24 and batch = 3 in
  List.iter
    (fun domains ->
      let tag = Printf.sprintf " (pool %d)" domains in
      let dir_ref = temp_dir () and dir_crash = temp_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir_ref; rm_rf dir_crash)
      @@ fun () ->
      build_store ~dir:dir_ref ~n:64 ~updates:16 ~seed:8 ();
      build_store ~dir:dir_crash ~n:64 ~updates:16 ~seed:8 ();
      let reference, ref_state =
        reference_run ~dir:dir_ref ~domains ~recut_every:1 ~wseed ~wframes
          ~rseed ~requests ~batch
      in
      let transcript, state =
        crash_recover_run ~dir:dir_crash ~domains ~recut_every:1
          ~crash_after:6 ~wseed ~wframes ~rseed ~requests ~batch
      in
      checks ("store state byte-identical after recovery" ^ tag) ref_state state;
      checks ("read transcript byte-identical after recovery" ^ tag) reference
        transcript)
    [ 1; 4 ]

(* --- failover: the storm survives a promotion --- *)

(* Catch a bootstrapped standby store up from the dead primary's
   journal on disk, then promote it. This is the on_handoff hook a
   real deployment wires to its replication tailer; shipping uses the
   authoritative recovered sequence, so an unacked suffix (none here —
   a crashed round journals nothing) could never leak in. *)
let catch_up_and_promote ~primary_dir sup_f () =
  let r = must (Supervisor.recover ~dir:primary_dir) in
  let since = Supervisor.seq sup_f in
  if r.Supervisor.r_seq > since then begin
    let batch =
      must
        (Journal.ship ~dir:primary_dir ~since ~seq:r.Supervisor.r_seq
           ~max:1_000_000 ())
    in
    check "catch-up batch is complete" true batch.Journal.b_complete;
    ignore (must (Supervisor.apply_shipped sup_f batch))
  end;
  Supervisor.promote sup_f;
  Supervisor.seq sup_f

let failover_run ~dir ~domains ~crash_after ~wseed ~wframes ~rseed ~requests
    ~batch ~kill_standby_on_handoff =
  let sup_p, data, ship = open_live dir in
  let n = Array.length data in
  (* [dir_f] — the standby's store directory — outlives this run: the
     mid-promotion scenario recovers from it. Callers clean it up. *)
  let dir_f = temp_dir () in
  let path_p = sock_path () and path_s = sock_path () in
  let pool_p = Pool.create ~domains () and pool_s = Pool.create ~domains () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool_p; Pool.shutdown pool_s)
  @@ fun () ->
  let primary =
    Server.create ~pool:pool_p
      (Server.config ~budget:8 ~queue_bound:64 ~ship ~role:"primary"
         ~store:sup_p ~recut_every:1 ~crash_after ~path:path_p data)
  in
  let runner_p = spawn_server primary in
  (* Bootstrap the warm standby from the live primary, then serve it
     {e live} (its own store) so it can accept writes once promoted. *)
  let c = connect path_p in
  let sup_f, _ = must (Replica.bootstrap ~dir:dir_f c) in
  Client.close c;
  Fun.protect ~finally:(fun () -> Supervisor.close sup_f) @@ fun () ->
  let standby_config ?crash_after path =
    Server.config ~budget:8 ~queue_bound:64
      ~ship:
        {
          Server.ship_dir = dir_f;
          ship_seq = Supervisor.seq sup_f;
          ship_manifest = ship.Server.ship_manifest;
        }
      ~role:"follower" ~store:sup_f ~recut_every:1 ?crash_after ~path data
  in
  let standby =
    Server.create ~pool:pool_s
      ~on_handoff:(catch_up_and_promote ~primary_dir:dir sup_f)
      (* The failover client opens its standby conversation with two
         SYNC frames (the first-contact probe, then read-your-replays)
         before the HANDOFF — a crash budget of 3 lands the kill on
         the promotion frame itself. *)
      (standby_config
         ?crash_after:(if kill_standby_on_handoff then Some 3 else None)
         path_s)
  in
  let runner_s = spawn_server standby in
  let obs = Registry.create () in
  let f = Failover.create ~obs ~wait_ms:5000. ~standby:path_s path_p in
  let frames = write_frames ~seed:wseed ~n ~frames:wframes in
  let acked, unsent, transcript =
    Fun.protect ~finally:(fun () -> Failover.close f) @@ fun () ->
    let acked, unsent = send_writes (Failover.rpc f) frames in
    let transcript =
      if unsent = [] then begin
        let t, _ = read_storm ~seed:rseed ~requests ~batch ~n (Failover.rpc f) in
        Some t
      end
      else None
    in
    (acked, unsent, transcript)
  in
  join_server runner_p;
  check "primary stopped at the simulated kill" true (Server.crashed primary);
  Supervisor.crash sup_p;
  (acked, unsent, transcript, runner_s, standby, sup_f, dir_f, path_s)

let test_failover_byte_identity () =
  let wseed = 17 and wframes = 10 and rseed = 4 and requests = 24 and batch = 3 in
  List.iter
    (fun domains ->
      let tag = Printf.sprintf " (pool %d)" domains in
      let dir_ref = temp_dir () and dir_p = temp_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir_ref; rm_rf dir_p)
      @@ fun () ->
      build_store ~dir:dir_ref ~n:64 ~updates:16 ~seed:10 ();
      build_store ~dir:dir_p ~n:64 ~updates:16 ~seed:10 ();
      let reference, ref_state =
        reference_run ~dir:dir_ref ~domains ~recut_every:1 ~wseed ~wframes
          ~rseed ~requests ~batch
      in
      (* Kill the primary on its 8th frame: bootstrap's handshake +
         sync (2) and the failover probe (1) land first, so the crash
         interrupts the 5th write frame with four writes acked. *)
      let acked, unsent, transcript, runner_s, _standby, sup_f, dir_f, path_s
          =
        failover_run ~dir:dir_p ~domains ~crash_after:8 ~wseed ~wframes ~rseed
          ~requests ~batch ~kill_standby_on_handoff:false
      in
      Fun.protect
        ~finally:(fun () ->
          shutdown_via path_s;
          join_server runner_s;
          rm_rf dir_f)
      @@ fun () ->
      check ("every write frame answered through the failover" ^ tag) true
        (unsent = []);
      check ("acked sequence monotone through the promotion" ^ tag) true
        (acked = Supervisor.seq sup_f);
      check ("promotion flipped the store role" ^ tag) true
        (Supervisor.role sup_f = Supervisor.Primary);
      checks ("promoted standby state = failure-free state" ^ tag) ref_state
        (fingerprint sup_f);
      match transcript with
      | Some t ->
          checks
            ("read transcript byte-identical through the failover" ^ tag)
            reference t
      | None -> Alcotest.fail ("read storm never ran" ^ tag))
    [ 1; 4 ]

(* --- the kill between promotion and HANDOFF-ACK --- *)

let test_crash_mid_promotion () =
  let wseed = 19 and wframes = 8 and rseed = 2 and requests = 24 and batch = 3 in
  let domains = 1 in
  let dir_ref = temp_dir () and dir_p = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir_ref; rm_rf dir_p) @@ fun () ->
  build_store ~dir:dir_ref ~n:64 ~updates:16 ~seed:12 ();
  build_store ~dir:dir_p ~n:64 ~updates:16 ~seed:12 ();
  let reference, ref_state =
    reference_run ~dir:dir_ref ~domains ~recut_every:1 ~wseed ~wframes ~rseed
      ~requests ~batch
  in
  (* The standby's crash lands on the HANDOFF frame — after the hook
     promoted and caught up its store, before the ack is sent: the
     client sees the promotion fail with the promotion durably done. *)
  let acked, unsent, _transcript, runner_s, standby, sup_f, dir_f, _path_s =
    failover_run ~dir:dir_p ~domains ~crash_after:8 ~wseed ~wframes ~rseed
      ~requests ~batch ~kill_standby_on_handoff:true
  in
  Fun.protect ~finally:(fun () -> rm_rf dir_f) @@ fun () ->
  join_server runner_s;
  check "standby stopped at the simulated kill" true (Server.crashed standby);
  check "the mid-promotion kill left frames unanswered" true (unsent <> []);
  check "the store was promoted before the kill" true
    (Supervisor.role sup_f = Supervisor.Primary);
  let acked_f = Supervisor.seq sup_f in
  check "the caught-up store holds every acked write" true (acked_f >= acked);
  Supervisor.crash sup_f;
  (* Recover the promoted standby's store — a recovered store reopens
     writable, so promotion is idempotent across the kill — restart,
     re-issue the HANDOFF the client never saw acked, resend, read. *)
  let r = must (Supervisor.recover ~dir:dir_f) in
  checki "recovery holds the caught-up acked prefix" acked_f r.Supervisor.r_seq;
  let sup2, data2, ship2 = open_live dir_f in
  Fun.protect ~finally:(fun () -> Supervisor.close sup2) @@ fun () ->
  let path2 = sock_path () in
  let server2 =
    Server.create
      (Server.config ~budget:8 ~queue_bound:64 ~ship:ship2 ~role:"primary"
         ~store:sup2 ~recut_every:1 ~path:path2 data2)
  in
  let runner2 = spawn_server server2 in
  Fun.protect ~finally:(fun () -> shutdown_via path2; join_server runner2)
  @@ fun () ->
  let c2 = connect path2 in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  (* Re-issued HANDOFF acks idempotently with the recovered sequence. *)
  (match Client.request_one c2 Wire.Handoff with
  | Ok (Wire.Handoff_ack { seq; role }) ->
      checki "re-issued handoff acks the recovered sequence" acked_f seq;
      checks "as a primary" "primary" role
  | Ok rr -> Alcotest.fail ("handoff answered: " ^ Wire.describe_reply rr)
  | Error e -> Alcotest.fail (Validate.to_string e));
  let _, still_unsent = send_writes (Client.request c2) unsent in
  check "resend completes" true (still_unsent = []);
  let transcript, _ =
    read_storm ~seed:rseed ~requests ~batch ~n:(Array.length data2)
      (Client.request c2)
  in
  checks "store state byte-identical after the mid-promotion kill" ref_state
    (fingerprint sup2);
  checks "read transcript byte-identical after the mid-promotion kill"
    reference transcript

(* --- loadgen update mix + multi-connection determinism over a live
   wire --- *)

let test_loadgen_update_mix_multi () =
  let run_once dir =
    let sup, data, ship = open_live dir in
    Fun.protect ~finally:(fun () -> Supervisor.close sup) @@ fun () ->
    let n = Array.length data in
    let path = sock_path () in
    let server =
      Server.create
        (Server.config ~budget:8 ~queue_bound:64 ~ship ~role:"primary"
           ~store:sup ~recut_every:8 ~path data)
    in
    let runner = spawn_server server in
    Fun.protect ~finally:(fun () -> shutdown_via path; join_server runner)
    @@ fun () ->
    let conns = Array.init 3 (fun _ -> connect path) in
    Fun.protect ~finally:(fun () -> Array.iter Client.close conns)
    @@ fun () ->
    let buf = Buffer.create 4096 in
    let msummary =
      must
        (Loadgen.run_multi
           ~rpcs:(Array.map Client.request conns)
           ~seed:21 ~requests:30 ~batch:3 ~n
           ~mix:{ Loadgen.default_mix with update = 3 }
           ~out:(Buffer.add_string buf) ())
    in
    (Buffer.contents buf, msummary, Supervisor.seq sup)
  in
  let dir_a = temp_dir () and dir_b = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir_a; rm_rf dir_b) @@ fun () ->
  build_store ~dir:dir_a ~n:32 ~updates:12 ~seed:14 ();
  build_store ~dir:dir_b ~n:32 ~updates:12 ~seed:14 ();
  let ta, sa, seq_a = run_once dir_a in
  let tb, sb, seq_b = run_once dir_b in
  checks "multi-connection write/read transcript reproducible" ta tb;
  checks "interleaved transcript CRC reproducible"
    sa.Loadgen.totals.Loadgen.transcript_crc
    sb.Loadgen.totals.Loadgen.transcript_crc;
  checki "three connections fingerprinted" 3
    (Array.length sa.Loadgen.connection_crcs);
  Array.iteri
    (fun i crc -> checks (Printf.sprintf "connection %d CRC" i) crc
        sb.Loadgen.connection_crcs.(i))
    sa.Loadgen.connection_crcs;
  check "the mix drew updates" true (seq_a > 12);
  checki "both runs journaled the same history" seq_a seq_b

let () =
  Alcotest.run "chaos-update"
    [
      ( "live wire",
        [
          Alcotest.test_case "writes ack, validate, and bound the reads"
            `Quick test_live_write_read;
          Alcotest.test_case "read-only server refuses writes in-band" `Quick
            test_read_only_refuses_writes;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case
            "kill mid-storm, whole round lost, byte-identical after resend"
            `Quick test_crash_recover_byte_identity;
          Alcotest.test_case
            "kill mid-schedule keeps exactly the acked prefix" `Quick
            test_crash_mid_schedule_acked_prefix;
        ] );
      ( "failover",
        [
          Alcotest.test_case "storm survives a promotion byte-identically"
            `Quick test_failover_byte_identity;
          Alcotest.test_case "kill between promotion and its ack" `Quick
            test_crash_mid_promotion;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "update mix over connections is deterministic"
            `Quick test_loadgen_update_mix_multi;
        ] );
    ]
