(* Sharded serving and TCP transport suite: endpoint parsing, the
   nonblocking TCP connect path, byte-at-a-time frame reassembly, the
   key-range partition map, and the headline scatter-gather proofs —
   merged replies byte-identical across shard counts {1, 2, 4} and
   front-end pool sizes, and a shard primary killed mid-write-storm
   failing over to its warm standby with the front-end transcript and
   the final composed state byte-identical to a failure-free run.

   Run via `dune runtest` or in isolation via `dune build @shard`.
   A watchdog alarm fails the whole suite rather than letting a hung
   socket test wedge the runner. *)

module Validate = Wavesyn_robust.Validate
module Journal = Wavesyn_robust.Journal
module Snapshot = Wavesyn_robust.Snapshot
module Supervisor = Wavesyn_robust.Supervisor
module Stream_synopsis = Wavesyn_stream.Stream_synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Prng = Wavesyn_util.Prng
module Pool = Wavesyn_par.Pool
module Wire = Wavesyn_server.Wire
module Conn = Wavesyn_server.Conn
module Endpoint = Wavesyn_server.Endpoint
module Shard = Wavesyn_server.Shard
module Server = Wavesyn_server.Server
module Client = Wavesyn_server.Client
module Failover = Wavesyn_server.Failover
module Replica = Wavesyn_server.Replica
module Loadgen = Wavesyn_server.Loadgen

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let check_sl = Alcotest.(check (list string))

(* Watchdog: a hung socket test must fail the suite, not wedge it. *)
let () =
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         prerr_endline "shard watchdog: a socket test hung past the deadline";
         exit 124));
  ignore (Unix.alarm 300)

(* --- harness --- *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wavesyn_shard_%d_%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir dir 0o755;
    dir

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "%s/wavesyn-shard-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !counter

(* TCP ports: spread by pid so parallel test runners do not collide,
   bumped per test so TIME_WAIT from an earlier test never interferes. *)
let tcp_port =
  let counter = ref 0 in
  fun () ->
    incr counter;
    20210 + (Unix.getpid () mod 9000) + (41 * !counter)

let must = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Validate.to_string e)

let must_s = function Ok v -> v | Error reason -> Alcotest.fail reason

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let spawn_server server = Domain.spawn (fun () -> Server.run server)

let join_server runner =
  match Domain.join runner with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("server run: " ^ Validate.to_string e)

let connect ?timeout_ms path =
  match Client.connect ~wait_ms:5000. ?timeout_ms path with
  | Ok c -> c
  | Error e -> Alcotest.fail (Validate.to_string e)

let shutdown_via path =
  let c = connect path in
  ignore (Client.request_one c Wire.Shutdown);
  Client.close c

(* Integer-valued data: with budget >= n every synopsis in the
   topology reconstructs it exactly, partial sums are exact in float
   arithmetic in any association order, and the sharded merge is
   byte-identical to the unsharded answer — the determinism contract
   of docs/SERVING.md. Positive so quantiles are answerable. *)
let exact_data n = Array.init n (fun i -> float_of_int (((i * 37) mod 101) + 3))

(* --- endpoint strings --- *)

let test_endpoint_parse () =
  (match Endpoint.parse "/tmp/x.sock" with
  | Ok (Endpoint.Unix_path p) -> checks "unix path" "/tmp/x.sock" p
  | _ -> Alcotest.fail "plain path must parse as a unix socket");
  (match Endpoint.parse "tcp:127.0.0.1:8080" with
  | Ok (Endpoint.Tcp { host; port }) ->
      checks "tcp host" "127.0.0.1" host;
      checki "tcp port" 8080 port
  | _ -> Alcotest.fail "tcp endpoint must parse");
  (match Endpoint.parse "tcp::9090" with
  | Ok (Endpoint.Tcp { host; port }) ->
      checks "empty host defaults to loopback" "127.0.0.1" host;
      checki "port with empty host" 9090 port
  | _ -> Alcotest.fail "tcp::PORT must parse");
  check "port 0 rejected" true (Result.is_error (Endpoint.parse "tcp:h:0"));
  check "port 65536 rejected" true
    (Result.is_error (Endpoint.parse "tcp:h:65536"));
  check "missing port rejected" true
    (Result.is_error (Endpoint.parse "tcp:hostonly"));
  (match Endpoint.parse "tcp:localhost:80" with
  | Ok ep -> check "localhost resolves" true (Result.is_ok (Endpoint.sockaddr ep))
  | Error e -> Alcotest.fail e);
  match Endpoint.parse "tcp:no-such-host.example:80" with
  | Ok ep ->
      check "non-numeric host is a structured error, not an exception" true
        (Result.is_error (Endpoint.sockaddr ep))
  | Error e -> Alcotest.fail e

(* --- TCP transport --- *)

(* Regression (fails on the pre-TCP client): the target is an endpoint
   string, the connect is nonblocking (EINPROGRESS finished via
   select + SO_ERROR), and ECONNREFUSED from a listener that is still
   binding is retried under the seeded backoff — the client here races
   the server domain to the port and must win anyway. *)
let test_tcp_roundtrip_and_connect_retry () =
  let n = 32 in
  let data = exact_data n in
  let ep = Printf.sprintf "tcp:127.0.0.1:%d" (tcp_port ()) in
  let server = Server.create (Server.config ~budget:n ~path:ep data) in
  let runner = spawn_server server in
  let c = connect ep in
  Fun.protect
    ~finally:(fun () ->
      Client.close c;
      shutdown_via ep;
      join_server runner)
  @@ fun () ->
  (match must (Client.request_one c Wire.Ping) with
  | Wire.Pong -> ()
  | r -> Alcotest.fail ("ping answered " ^ Wire.describe_reply r));
  let exact = Array.fold_left ( +. ) 0. data in
  match must (Client.request_one c (Wire.Range { lo = 0; hi = n - 1 })) with
  | Wire.Value v ->
      check "range over TCP is the exact sum" true (v = exact)
  | r -> Alcotest.fail ("range answered " ^ Wire.describe_reply r)

(* Regression (fails on the pre-TCP client): a dead TCP port with no
   retry budget must surface a structured Io_error immediately — not a
   raised Unix_error, not a hang. *)
let test_tcp_connect_refused () =
  let ep = Printf.sprintf "tcp:127.0.0.1:%d" (tcp_port ()) in
  match Client.connect ~wait_ms:0. ep with
  | Error (Validate.Io_error _) -> ()
  | Ok _ -> Alcotest.fail "connected to a dead port"
  | Error e -> Alcotest.fail ("wrong error class: " ^ Validate.to_string e)

(* The port-taken path: binding a second server on a live port is a
   structured Io_error from Server.run (the cram test pins the CLI
   exit code), and SO_REUSEADDR lets the port be rebound immediately
   after the first server stops. *)
let test_tcp_port_taken_and_rebind () =
  let n = 16 in
  let data = exact_data n in
  let ep = Printf.sprintf "tcp:127.0.0.1:%d" (tcp_port ()) in
  let first = Server.create (Server.config ~budget:n ~path:ep data) in
  let runner = spawn_server first in
  let c = connect ep in
  Client.close c;
  (match Server.run (Server.create (Server.config ~budget:n ~path:ep data)) with
  | Error (Validate.Io_error { path; reason }) ->
      checks "error names the endpoint" ep path;
      check "reason is the bind failure" true (contains reason "in use")
  | Ok () -> Alcotest.fail "second bind on a live port succeeded"
  | Error e -> Alcotest.fail ("wrong error class: " ^ Validate.to_string e));
  shutdown_via ep;
  join_server runner;
  (* TIME_WAIT from the connection just closed must not block the
     rebind: SO_REUSEADDR is set before bind. *)
  let again = Server.create (Server.config ~budget:n ~path:ep data) in
  let runner = spawn_server again in
  let c = connect ep in
  (match must (Client.request_one c Wire.Ping) with
  | Wire.Pong -> ()
  | r -> Alcotest.fail ("rebound server answered " ^ Wire.describe_reply r));
  Client.close c;
  shutdown_via ep;
  join_server runner

(* --- byte-at-a-time frame reassembly (TCP segmentation) --- *)

(* Regression for the read path under TCP segmentation: a frame
   header (and every other boundary) split across reads must buffer,
   never corrupt — fed one byte at a time, the strictest segmentation
   a stream can produce. *)
let test_conn_one_byte_frames () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  let conn = Conn.create ~id:0 ~now_ms:0. b in
  let requests =
    [
      Wire.Ping;
      Wire.Range { lo = 3; hi = 9 };
      Wire.Update { i = 4; delta = 0.5 };
      Wire.Batch [ Wire.Point 1; Wire.Quantile 0.5 ];
    ]
  in
  let bytes = String.concat "" (List.map Wire.encode_request requests) in
  let got = ref [] in
  String.iter
    (fun ch ->
      ignore (Unix.write_substring a (String.make 1 ch) 0 1);
      let events, status = Conn.read conn ~now_ms:0. in
      (match status with
      | `Eof -> Alcotest.fail "connection ended mid-frame"
      | `More -> ());
      List.iter
        (function
          | Conn.Request r -> got := Wire.describe_request r :: !got
          | Conn.Bad_line reason ->
              Alcotest.fail ("fell back to text mode: " ^ reason)
          | Conn.Corrupt reason ->
              Alcotest.fail ("split frame read as corrupt: " ^ reason))
        events)
    bytes;
  check_sl "every frame reassembled, in order"
    (List.map Wire.describe_request requests)
    (List.rev !got)

let test_conn_one_byte_text_lines () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  let conn = Conn.create ~id:1 ~now_ms:0. b in
  let got = ref [] in
  String.iter
    (fun ch ->
      ignore (Unix.write_substring a (String.make 1 ch) 0 1);
      let events, _ = Conn.read conn ~now_ms:0. in
      List.iter
        (function
          | Conn.Request r -> got := Wire.describe_request r :: !got
          | Conn.Bad_line reason -> Alcotest.fail ("bad line: " ^ reason)
          | Conn.Corrupt reason -> Alcotest.fail ("corrupt: " ^ reason))
        events)
    "PING\nPOINT 3\nRANGE 0 7\n";
  check_sl "text lines reassembled byte by byte"
    [ "PING"; "POINT 3"; "RANGE 0 7" ]
    (List.rev !got)

(* --- the partition map --- *)

let ranges_to_string ranges =
  String.concat ","
    (List.map (fun { Shard.lo; hi } -> Printf.sprintf "%d-%d" lo hi) ranges)

let test_partition_map () =
  checks "even split" "0-15,16-31,32-47,48-63"
    (ranges_to_string (must_s (Shard.split ~n:64 ~shards:4)));
  checks "single shard" "0-63" (ranges_to_string (must_s (Shard.split ~n:64 ~shards:1)));
  check "non-power-of-two count rejected" true
    (Result.is_error (Shard.split ~n:64 ~shards:3));
  check "more shards than cells rejected" true
    (Result.is_error (Shard.split ~n:4 ~shards:8));
  checks "explicit uneven ranges" "0-31,32-47,48-63"
    (ranges_to_string (must_s (Shard.parse_ranges ~n:64 "0-31,32-47,48-63")));
  check "non-power-of-two range length rejected" true
    (Result.is_error (Shard.parse_ranges ~n:64 "0-15,16-63"));
  check "gap rejected" true
    (Result.is_error (Shard.parse_ranges ~n:64 "0-15,17-63"));
  check "short cover rejected" true
    (Result.is_error (Shard.parse_ranges ~n:64 "0-31"));
  check "non-power-of-two length rejected" true
    (Result.is_error (Shard.parse_ranges ~n:64 "0-15,16-39,40-63"));
  check "garbage rejected" true
    (Result.is_error (Shard.parse_ranges ~n:64 "zero-to-many"));
  let ranges = must_s (Shard.parse_ranges ~n:64 "0-31,32-47,48-63") in
  check "hand-built ranges validate" true
    (Result.is_ok (Shard.check_ranges ~n:64 ranges))

(* --- scatter-gather topologies --- *)

(* Spawn one static shard server per range plus a scatter-gather
   front-end over client connections to them; hand [f] the public
   path, then tear the whole topology down. *)
let with_sharded_topology ?(queue_bound = 64) ~domains ~budget ~data ~shards f =
  let n = Array.length data in
  let ranges = must_s (Shard.split ~n ~shards) in
  let shard_paths = List.map (fun _ -> sock_path ()) ranges in
  let runners =
    List.map2
      (fun path { Shard.lo; hi } ->
        let slice = Array.sub data lo (hi - lo + 1) in
        spawn_server
          (Server.create (Server.config ~budget ~queue_bound ~path slice)))
      shard_paths ranges
  in
  let clients = List.map (fun p -> connect p) shard_paths in
  let rpcs =
    Array.of_list (List.map (fun c req -> Client.request c req) clients)
  in
  let router = must_s (Shard.router ~n ~ranges rpcs) in
  let pool = Pool.create ~domains () in
  let front_path = sock_path () in
  let front =
    Server.create ~pool ~router
      (Server.config ~budget ~queue_bound ~path:front_path data)
  in
  let front_runner = spawn_server front in
  Fun.protect
    ~finally:(fun () ->
      shutdown_via front_path;
      join_server front_runner;
      Shard.shutdown router;
      List.iter Client.close clients;
      List.iter join_server runners;
      Pool.shutdown pool)
  @@ fun () -> f front_path

(* Fixed probe schedule: every cell, ranges crossing every shard
   boundary, a quantile grid, and the whole out-of-domain error
   surface — the router must mirror the unsharded messages exactly. *)
let probes n =
  List.concat
    [
      List.init n (fun i -> Wire.Point i);
      [ Wire.Point (-1); Wire.Point n ];
      [
        Wire.Range { lo = 0; hi = n - 1 };
        Wire.Range { lo = 3; hi = 3 };
        Wire.Range { lo = 1; hi = n - 2 };
        Wire.Range { lo = (n / 4) - 1; hi = n / 4 };
        Wire.Range { lo = (n / 2) - 2; hi = (n / 2) + 3 };
        Wire.Range { lo = 5; hi = 2 };
        Wire.Range { lo = -1; hi = 4 };
        Wire.Range { lo = 0; hi = n };
      ];
      List.map
        (fun q -> Wire.Quantile q)
        [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 1.; -0.5; 1.5; Float.nan ];
      [ Wire.Ping ];
    ]

let ask path reqs =
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  List.concat_map
    (fun r -> List.map Wire.describe_reply (must (Client.request c r)))
    reqs

let transcript ~seed ~requests ~batch ~n path =
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let buf = Buffer.create 4096 in
  let summary =
    must
      (Loadgen.run
         ~rpc:(fun req -> Client.request c req)
         ~seed ~requests ~batch ~n ~mix:Loadgen.default_mix
         ~out:(Buffer.add_string buf) ())
  in
  (Buffer.contents buf, summary)

(* The headline property: merged replies are byte-identical across
   shard counts {1, 2, 4} and front-end pool sizes {1, 4}, and equal
   to the unsharded server's on the same data. *)
let test_scatter_gather_byte_identity () =
  let n = 64 in
  let data = exact_data n in
  let unsharded_path = sock_path () in
  let unsharded =
    Server.create (Server.config ~budget:n ~path:unsharded_path data)
  in
  let runner = spawn_server unsharded in
  let reference_replies, (reference_transcript, reference_summary) =
    Fun.protect
      ~finally:(fun () ->
        shutdown_via unsharded_path;
        join_server runner)
    @@ fun () ->
    ( ask unsharded_path (probes n),
      transcript ~seed:11 ~requests:90 ~batch:3 ~n unsharded_path )
  in
  List.iter
    (fun (shards, domains) ->
      let tag = Printf.sprintf " (shards %d, pool %d)" shards domains in
      with_sharded_topology ~domains ~budget:n ~data ~shards @@ fun path ->
      check_sl ("probe replies byte-identical" ^ tag) reference_replies
        (ask path (probes n));
      let t, summary = transcript ~seed:11 ~requests:90 ~batch:3 ~n path in
      checks ("loadgen transcript byte-identical" ^ tag) reference_transcript t;
      checks
        ("transcript CRC byte-identical" ^ tag)
        reference_summary.Loadgen.transcript_crc summary.Loadgen.transcript_crc)
    [ (1, 1); (2, 1); (2, 4); (4, 1); (4, 4) ]

(* STATS through the front-end: its own table first, then every
   shard's section in shard-index order — never arrival order. *)
let test_stats_sections_positional () =
  let n = 64 in
  with_sharded_topology ~domains:1 ~budget:n ~data:(exact_data n) ~shards:4
  @@ fun path ->
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match must (Client.request_one c Wire.Stats) with
  | Wire.Stats_text body ->
      check "front-end table present" true (contains body "server.requests");
      let index_of needle =
        let rec go i =
          if i + String.length needle > String.length body then
            Alcotest.fail (needle ^ " missing from merged STATS")
          else if String.sub body i (String.length needle) = needle then i
          else go (i + 1)
        in
        go 0
      in
      let positions =
        List.map index_of
          [
            "== shard 0 [0, 15] ==";
            "== shard 1 [16, 31] ==";
            "== shard 2 [32, 47] ==";
            "== shard 3 [48, 63] ==";
          ]
      in
      check "sections in shard-index order" true
        (positions = List.sort compare positions)
  | r -> Alcotest.fail ("STATS answered " ^ Wire.describe_reply r)

(* Overload parity: same queue bound, same schedule — the front-end
   sheds the same requests with byte-identical OVERLOAD lines (bound,
   depth, and the tier string the RETIER broadcast keeps on the
   front-end's ladder). Answered VALUEs are compared only for schedule
   (the request side of every line): a degraded tier's approximation
   error depends on the decomposition domain, so under forced
   degradation the sharded and unsharded answers agree within the
   tier's bound but not bit-for-bit — the byte-identity contract
   covers exactly-reconstructing tiers (see docs/SERVING.md). *)
let test_overload_parity () =
  let n = 64 in
  let data = exact_data n in
  let unsharded_path = sock_path () in
  let unsharded =
    Server.create
      (Server.config ~budget:n ~queue_bound:4 ~path:unsharded_path data)
  in
  let runner = spawn_server unsharded in
  let reference, reference_summary =
    Fun.protect
      ~finally:(fun () ->
        shutdown_via unsharded_path;
        join_server runner)
    @@ fun () -> transcript ~seed:23 ~requests:64 ~batch:8 ~n unsharded_path
  in
  check "the schedule actually sheds" true
    (reference_summary.Loadgen.overloads > 0);
  with_sharded_topology ~queue_bound:4 ~domains:1 ~budget:n ~data ~shards:2
  @@ fun path ->
  let t, summary = transcript ~seed:23 ~requests:64 ~batch:8 ~n path in
  let split_lines s = String.split_on_char '\n' s in
  let request_side line =
    match String.index_opt line '>' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let ref_lines = split_lines reference and got_lines = split_lines t in
  checki "same transcript length" (List.length ref_lines)
    (List.length got_lines);
  List.iter2
    (fun expected got ->
      checks "same request schedule" (request_side expected)
        (request_side got);
      if contains expected "OVERLOAD" || contains got "OVERLOAD" then
        checks "OVERLOAD lines byte-identical" expected got)
    ref_lines got_lines;
  checki "same shed count" reference_summary.Loadgen.overloads
    summary.Loadgen.overloads

(* --- the sharded failover chaos proof --- *)

(* A primary store with [updates] seeded point updates acknowledged. *)
let build_store ~dir ~n ~updates ~seed () =
  let scfg =
    Supervisor.config ~checkpoint_every:1_000_000 ~recut_every:1_000_000
      ~sync:false ~dir ~n ~budget:8 Metrics.Abs
  in
  let sup = must (Supervisor.open_store scfg) in
  let rng = Prng.create ~seed in
  for _ = 1 to updates do
    ignore
      (must
         (Supervisor.ingest sup ~i:(Prng.int rng n)
            ~delta:(float_of_int (Prng.int rng 21 - 10) /. 4.)))
  done;
  Supervisor.close sup

let open_live dir =
  let r = must (Supervisor.recover ~dir) in
  let scfg =
    {
      r.Supervisor.r_config with
      Supervisor.checkpoint_every = 1_000_000;
      recut_every = 1_000_000;
      sync = false;
    }
  in
  let sup = must (Supervisor.open_store scfg) in
  let data = Stream_synopsis.current_data (Supervisor.stream sup) in
  let ship =
    {
      Server.ship_dir = dir;
      ship_seq = Supervisor.seq sup;
      ship_manifest = Supervisor.manifest_text scfg;
    }
  in
  (sup, data, ship)

let fingerprint sup =
  Snapshot.encode
    (Snapshot.of_stream ~seq:(Supervisor.seq sup) (Supervisor.stream sup))

(* Catch a bootstrapped standby up from the dead primary's journal on
   disk, then promote it — the on_handoff hook a real deployment wires
   to its replication tailer. *)
let catch_up_and_promote ~primary_dir sup_f () =
  let r = must (Supervisor.recover ~dir:primary_dir) in
  let since = Supervisor.seq sup_f in
  if r.Supervisor.r_seq > since then begin
    let batch =
      must
        (Journal.ship ~dir:primary_dir ~since ~seq:r.Supervisor.r_seq
           ~max:1_000_000 ())
    in
    check "catch-up batch is complete" true batch.Journal.b_complete;
    ignore (must (Supervisor.apply_shipped sup_f batch))
  end;
  Supervisor.promote sup_f;
  Supervisor.seq sup_f

(* The seeded write schedule: single UPDATEs and INGEST storms across
   the whole key domain, so both shards take writes. *)
let write_frames ~seed ~n ~frames =
  let rng = Prng.create ~seed in
  List.init frames (fun _ ->
      if Prng.int rng 3 = 0 then
        Wire.Ingest
          (List.init
             (2 + Prng.int rng 3)
             (fun _ -> (Prng.int rng n, Prng.float rng 2.0 -. 1.0)))
      else Wire.Update { i = Prng.int rng n; delta = Prng.float rng 2.0 -. 1.0 })

let send_writes rpc frames =
  let rec go acked = function
    | [] -> (acked, [])
    | frame :: rest -> (
        match rpc frame with
        | Ok [ Wire.Acked { seq } ] -> go seq rest
        | Ok other ->
            Alcotest.fail
              (Printf.sprintf "write frame answered oddly: %s"
                 (String.concat "; " (List.map Wire.describe_reply other)))
        | Error _ -> (acked, frame :: rest))
  in
  go 0 frames

(* Two shards over [0, 32): shard 0 a plain live store, shard 1 a
   primary/standby pair behind the front-end's failover client. With
   [crash], the shard-1 primary dies mid-write-storm and the failover
   promotes the standby; the run must complete with the same
   transcript and composed state as the failure-free run. *)
let sharded_failover_run ~domains ~crash () =
  let n = 32 and half = 16 in
  let dir0 = temp_dir () and dir1 = temp_dir () and dir_f = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir0;
      rm_rf dir1;
      rm_rf dir_f)
  @@ fun () ->
  build_store ~dir:dir0 ~n:half ~updates:8 ~seed:21 ();
  build_store ~dir:dir1 ~n:half ~updates:8 ~seed:22 ();
  let sup0, data0, _ = open_live dir0 in
  let sup1, data1, ship1 = open_live dir1 in
  let path0 = sock_path ()
  and path1p = sock_path ()
  and path1s = sock_path ()
  and front_path = sock_path () in
  let shard0 =
    Server.create
      (Server.config ~budget:8 ~store:sup0 ~recut_every:1 ~path:path0 data0)
  in
  let runner0 = spawn_server shard0 in
  let primary =
    Server.create
      (Server.config ~budget:8 ~ship:ship1 ~role:"primary" ~store:sup1
         ~recut_every:1
         ?crash_after:(if crash then Some 7 else None)
         ~path:path1p data1)
  in
  let runner1p = spawn_server primary in
  (* Bootstrap the warm standby from the live shard-1 primary, then
     serve it live so it can take writes once promoted. *)
  let c = connect path1p in
  let sup_f, _ = must (Replica.bootstrap ~dir:dir_f c) in
  Client.close c;
  let standby =
    Server.create
      ~on_handoff:(catch_up_and_promote ~primary_dir:dir1 sup_f)
      (Server.config ~budget:8
         ~ship:
           {
             Server.ship_dir = dir_f;
             ship_seq = Supervisor.seq sup_f;
             ship_manifest = ship1.Server.ship_manifest;
           }
         ~role:"follower" ~store:sup_f ~recut_every:1 ~path:path1s data1)
  in
  let runner1s = spawn_server standby in
  (* The front-end: shard 0 over a plain client, shard 1 through the
     failover endpoint, global sequences seeded from the stores. *)
  let c0 = connect path0 in
  let fo = Failover.create ~wait_ms:5000. ~standby:path1s path1p in
  let rpcs = [| (fun req -> Client.request c0 req); Failover.rpc fo |] in
  let ranges = [ { Shard.lo = 0; hi = half - 1 }; { Shard.lo = half; hi = n - 1 } ] in
  let router =
    must_s
      (Shard.router ~n
         ~seqs:[| Supervisor.seq sup0; Supervisor.seq sup1 |]
         ~ranges rpcs)
  in
  let pool = Pool.create ~domains () in
  let front =
    Server.create ~pool ~router
      (Server.config ~budget:8 ~recut_every:1 ~path:front_path
         (Array.make n 0.))
  in
  let front_runner = spawn_server front in
  let acked, unsent, t =
    Fun.protect
      ~finally:(fun () ->
        Failover.close fo;
        Pool.shutdown pool)
    @@ fun () ->
    let cf = connect front_path in
    Fun.protect ~finally:(fun () -> Client.close cf) @@ fun () ->
    let frames = write_frames ~seed:31 ~n ~frames:12 in
    let acked, unsent = send_writes (fun r -> Client.request cf r) frames in
    let buf = Buffer.create 4096 in
    let summary =
      must
        (Loadgen.run
           ~rpc:(fun req -> Client.request cf req)
           ~seed:6 ~requests:30 ~batch:3 ~n ~mix:Loadgen.default_mix
           ~out:(Buffer.add_string buf) ())
    in
    ignore summary;
    (acked, unsent, Buffer.contents buf)
  in
  check "failover is transparent through the router" true (unsent = []);
  shutdown_via front_path;
  join_server front_runner;
  shutdown_via path0;
  join_server runner0;
  if crash then begin
    join_server runner1p;
    check "shard-1 primary stopped at the simulated kill" true
      (Server.crashed primary);
    check "the router failed over to the standby" true (Failover.promoted fo);
    Supervisor.crash sup1
  end
  else begin
    shutdown_via path1p;
    join_server runner1p;
    Supervisor.close sup1
  end;
  shutdown_via path1s;
  join_server runner1s;
  (* The composed final state: shard 0 plus whichever shard-1 store
     survived the run. *)
  let state = fingerprint sup0 ^ fingerprint (if crash then sup_f else sup1) in
  Supervisor.close sup0;
  Supervisor.close sup_f;
  (acked, t, state)

let test_sharded_failover_byte_identity () =
  List.iter
    (fun domains ->
      let tag = Printf.sprintf " (pool %d)" domains in
      let ref_acked, ref_transcript, ref_state =
        sharded_failover_run ~domains ~crash:false ()
      in
      let acked, t, state = sharded_failover_run ~domains ~crash:true () in
      checki ("global ACKED sequence identical" ^ tag) ref_acked acked;
      checks ("front-end read transcript byte-identical" ^ tag) ref_transcript
        t;
      checks ("composed store state byte-identical" ^ tag) ref_state state)
    [ 1; 4 ]

let () =
  Alcotest.run "shard"
    [
      ( "transport",
        [
          Alcotest.test_case "endpoint parse" `Quick test_endpoint_parse;
          Alcotest.test_case "tcp roundtrip + connect retry" `Quick
            test_tcp_roundtrip_and_connect_retry;
          Alcotest.test_case "tcp connect refused" `Quick
            test_tcp_connect_refused;
          Alcotest.test_case "tcp port taken + rebind" `Quick
            test_tcp_port_taken_and_rebind;
          Alcotest.test_case "one-byte binary frames" `Quick
            test_conn_one_byte_frames;
          Alcotest.test_case "one-byte text lines" `Quick
            test_conn_one_byte_text_lines;
        ] );
      ( "partition",
        [ Alcotest.test_case "partition map" `Quick test_partition_map ] );
      ( "scatter-gather",
        [
          Alcotest.test_case "byte identity across shard counts" `Quick
            test_scatter_gather_byte_identity;
          Alcotest.test_case "stats sections positional" `Quick
            test_stats_sections_positional;
          Alcotest.test_case "overload parity" `Quick test_overload_parity;
        ] );
      ( "failover",
        [
          Alcotest.test_case "shard primary killed mid-storm" `Quick
            test_sharded_failover_byte_identity;
        ] );
    ]
