(* Tests for the one-dimensional Haar transform and error tree,
   anchored on the worked example of Section 2.1 of the paper. *)

module Haar1d = Wavesyn_haar.Haar1d
module Error_tree = Wavesyn_haar.Error_tree
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let paper_data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |]
let paper_wavelet = [| 2.75; -1.25; 0.5; 0.; 0.; -1.; -1.; 0. |]

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)
let check_array = Alcotest.(check (array (float 1e-9)))

let random_signal rng n = Array.init n (fun _ -> Prng.float rng 20. -. 10.)

let test_paper_decomposition () =
  check_array "W_A of Section 2.1" paper_wavelet (Haar1d.decompose paper_data)

let test_paper_resolution_table () =
  let rows = Haar1d.resolution_table paper_data in
  checki "row count" 4 (List.length rows);
  (match rows with
  | top :: rest ->
      checki "top resolution" 3 top.Haar1d.resolution;
      check_array "top averages" paper_data top.Haar1d.averages;
      check "top has no details" true (top.Haar1d.details = None);
      (match rest with
      | [ r2; r1; r0 ] ->
          checki "r2 resolution" 2 r2.Haar1d.resolution;
          check_array "r2 averages" [| 2.; 1.; 4.; 4. |] r2.Haar1d.averages;
          check_array "r2 details" [| 0.; -1.; -1.; 0. |]
            (Option.get r2.Haar1d.details);
          check_array "r1 averages" [| 1.5; 4. |] r1.Haar1d.averages;
          check_array "r1 details" [| 0.5; 0. |] (Option.get r1.Haar1d.details);
          check_array "r0 averages" [| 2.75 |] r0.Haar1d.averages;
          check_array "r0 details" [| -1.25 |] (Option.get r0.Haar1d.details)
      | _ -> Alcotest.fail "unexpected row structure")
  | [] -> Alcotest.fail "empty table")

let test_paper_reconstruction () =
  check_array "reconstruct inverts decompose" paper_data
    (Haar1d.reconstruct paper_wavelet)

let test_paper_d4_identity () =
  (* Figure 1(a): d_4 = c_0 - c_1 + c_6 = 11/4 + 5/4 - 1 = 3. *)
  let w = paper_wavelet in
  checkf "d4 via path" 3. (w.(0) -. w.(1) +. (-1. *. 0.) +. (1. *. w.(6)));
  checkf "point d4" 3. (Haar1d.point ~wavelet:w 4)

let test_all_points_match () =
  Array.iteri
    (fun i d -> checkf (Printf.sprintf "point %d" i) d (Haar1d.point ~wavelet:paper_wavelet i))
    paper_data

let test_rejects_non_pow2 () =
  Alcotest.check_raises "length 6 rejected"
    (Invalid_argument "Haar1d: input length must be a power of two")
    (fun () -> ignore (Haar1d.decompose (Array.make 6 0.)))

let test_singleton () =
  check_array "N=1 decompose" [| 5. |] (Haar1d.decompose [| 5. |]);
  check_array "N=1 reconstruct" [| 5. |] (Haar1d.reconstruct [| 5. |]);
  check "N=1 path" true (Haar1d.path ~n:1 0 = [ 0 ])

let test_pad_pow2 () =
  check_array "pad 3 -> 4" [| 1.; 2.; 3.; 0. |] (Haar1d.pad_pow2 [| 1.; 2.; 3. |]);
  check_array "pad exact stays" [| 1.; 2. |] (Haar1d.pad_pow2 [| 1.; 2. |]);
  check_array "pad custom fill" [| 1.; 2.; 3.; 7. |]
    (Haar1d.pad_pow2 ~fill:7. [| 1.; 2.; 3. |])

let test_levels () =
  let n = 8 in
  checki "level c0" 0 (Haar1d.level_of ~n 0);
  checki "level c1" 0 (Haar1d.level_of ~n 1);
  checki "level c2" 1 (Haar1d.level_of ~n 2);
  checki "level c3" 1 (Haar1d.level_of ~n 3);
  checki "level c7" 2 (Haar1d.level_of ~n 7)

let test_supports () =
  let n = 8 in
  check "support c0" true (Haar1d.support ~n 0 = (0, 8));
  check "support c1" true (Haar1d.support ~n 1 = (0, 8));
  check "support c2" true (Haar1d.support ~n 2 = (0, 4));
  check "support c3" true (Haar1d.support ~n 3 = (4, 8));
  check "support c6" true (Haar1d.support ~n 6 = (4, 6));
  checki "support_size c6" 2 (Haar1d.support_size ~n 6)

let test_signs () =
  let n = 8 in
  (* c_0 positive everywhere. *)
  for i = 0 to 7 do
    checki "c0 sign" 1 (Haar1d.sign ~n ~coeff:0 ~cell:i)
  done;
  (* c_1 positive on the left half, negative on the right. *)
  checki "c1 left" 1 (Haar1d.sign ~n ~coeff:1 ~cell:0);
  checki "c1 right" (-1) (Haar1d.sign ~n ~coeff:1 ~cell:7);
  (* c_6 supports cells 4-5 positively... c_6 covers [4,6): +1 at 4, -1 at 5. *)
  checki "c6 at 4" 1 (Haar1d.sign ~n ~coeff:6 ~cell:4);
  checki "c6 at 5" (-1) (Haar1d.sign ~n ~coeff:6 ~cell:5);
  checki "c6 outside" 0 (Haar1d.sign ~n ~coeff:6 ~cell:2)

let test_paths () =
  let n = 8 in
  check "path of cell 4" true (Haar1d.path ~n 4 = [ 0; 1; 3; 6 ]);
  check "path of cell 0" true (Haar1d.path ~n 0 = [ 0; 1; 2; 4 ]);
  check "path of cell 7" true (Haar1d.path ~n 7 = [ 0; 1; 3; 7 ])

let test_normalization () =
  let n = 8 in
  checkf "norm c0" 1. (Haar1d.normalization ~n 0);
  checkf "norm c1" 1. (Haar1d.normalization ~n 1);
  checkf "norm c2" (1. /. Float.sqrt 2.) (Haar1d.normalization ~n 2);
  checkf "norm c7" 0.5 (Haar1d.normalization ~n 7)

let test_point_from_set () =
  let n = 8 in
  let full = Array.to_list (Array.mapi (fun i c -> (i, c)) paper_wavelet) in
  Array.iteri
    (fun i d -> checkf (Printf.sprintf "full set cell %d" i) d (Haar1d.point_from_set ~n full i))
    paper_data;
  (* Empty set reconstructs all zeros. *)
  checkf "empty set" 0. (Haar1d.point_from_set ~n [] 3)

let sizes = [ 1; 2; 4; 8; 16; 64; 256 ]

let test_roundtrip_sizes () =
  let rng = Prng.create ~seed:100 in
  List.iter
    (fun n ->
      let a = random_signal rng n in
      let back = Haar1d.reconstruct (Haar1d.decompose a) in
      Array.iteri
        (fun i x ->
          check (Printf.sprintf "roundtrip n=%d cell %d" n i) true
            (Float_util.approx_equal ~eps:1e-9 x back.(i)))
        a)
    sizes

let prop_roundtrip =
  QCheck.Test.make ~name:"reconstruct . decompose = id" ~count:100
    QCheck.(array_of_size (Gen.oneofl [ 1; 2; 4; 8; 16; 32 ]) (float_range (-1000.) 1000.))
    (fun a ->
      let back = Haar1d.reconstruct (Haar1d.decompose a) in
      Array.for_all2 (fun x y -> Float_util.approx_equal ~eps:1e-6 x y) a back)

let prop_point_matches_reconstruct =
  QCheck.Test.make ~name:"point equals full reconstruction" ~count:100
    QCheck.(array_of_size (Gen.oneofl [ 2; 4; 8; 16 ]) (float_range (-100.) 100.))
    (fun a ->
      let w = Haar1d.decompose a in
      let back = Haar1d.reconstruct w in
      Array.for_all
        (fun i -> Float_util.approx_equal ~eps:1e-6 back.(i) (Haar1d.point ~wavelet:w i))
        (Array.init (Array.length a) Fun.id))

let prop_path_sign_reconstruction =
  QCheck.Test.make ~name:"sum of sign*coeff over path reconstructs data" ~count:100
    QCheck.(array_of_size (Gen.oneofl [ 2; 4; 8; 16; 32 ]) (float_range (-100.) 100.))
    (fun a ->
      let n = Array.length a in
      let w = Haar1d.decompose a in
      Array.for_all
        (fun i ->
          let v =
            List.fold_left
              (fun acc j -> acc +. (float_of_int (Haar1d.sign ~n ~coeff:j ~cell:i) *. w.(j)))
              0. (Haar1d.path ~n i)
          in
          Float_util.approx_equal ~eps:1e-6 v a.(i))
        (Array.init n Fun.id))

let prop_parseval =
  QCheck.Test.make ~name:"Parseval: sum of normalized^2 = energy / N" ~count:100
    QCheck.(array_of_size (Gen.oneofl [ 2; 4; 8; 16 ]) (float_range (-100.) 100.))
    (fun a ->
      let n = float_of_int (Array.length a) in
      let w = Haar1d.normalized (Haar1d.decompose a) in
      let lhs = Array.fold_left (fun acc c -> acc +. (c *. c)) 0. w in
      let rhs = Array.fold_left (fun acc d -> acc +. (d *. d)) 0. a /. n in
      Float_util.approx_equal ~eps:1e-6 lhs rhs)

let prop_linearity =
  QCheck.Test.make ~name:"transform is linear" ~count:100
    QCheck.(
      pair
        (array_of_size (Gen.return 16) (float_range (-50.) 50.))
        (array_of_size (Gen.return 16) (float_range (-50.) 50.)))
    (fun (a, b) ->
      let sum = Array.map2 ( +. ) a b in
      let ws = Haar1d.decompose sum in
      let wa = Haar1d.decompose a and wb = Haar1d.decompose b in
      Array.for_all2
        (fun x y -> Float_util.approx_equal ~eps:1e-6 x y)
        ws (Array.map2 ( +. ) wa wb))

(* --- Error tree --- *)

let tree = Error_tree.of_data paper_data

let test_tree_shape () =
  checki "n" 8 (Error_tree.n tree);
  check "children of root" true (Error_tree.children tree 0 = [ 1 ]);
  check "children of 1" true (Error_tree.children tree 1 = [ 2; 3 ]);
  check "children of 7" true (Error_tree.children tree 7 = [ 14; 15 ]);
  check "leaf has no children" true (Error_tree.children tree 9 = []);
  check "8 is leaf" true (Error_tree.is_leaf tree 8);
  check "7 is internal" false (Error_tree.is_leaf tree 7)

let test_tree_parent_depth () =
  checki "parent of 1" 0 (Error_tree.parent tree 1);
  checki "parent of 6" 3 (Error_tree.parent tree 6);
  checki "parent of leaf 12" 6 (Error_tree.parent tree 12);
  checki "depth of root" 0 (Error_tree.depth tree 0);
  checki "depth of 1" 1 (Error_tree.depth tree 1);
  checki "depth of 6" 3 (Error_tree.depth tree 6);
  checki "depth of leaf 8" 4 (Error_tree.depth tree 8)

let test_tree_ancestors () =
  check "ancestors of 6" true (Error_tree.ancestors tree 6 = [ 0; 1; 3 ]);
  check "ancestors of leaf 12" true (Error_tree.ancestors tree 12 = [ 0; 1; 3; 6 ]);
  check "ancestors of root" true (Error_tree.ancestors tree 0 = [])

let test_tree_values () =
  checkf "coeff 1" (-1.25) (Error_tree.coeff tree 1);
  checkf "leaf 12 value" 3. (Error_tree.leaf_value tree 12);
  checkf "max_abs_coeff" 2.75 (Error_tree.max_abs_coeff tree)

let test_tree_subtree_counts () =
  checki "root counts all" 8 (Error_tree.subtree_coeff_count tree 0);
  checki "T_1" 7 (Error_tree.subtree_coeff_count tree 1);
  checki "T_2" 3 (Error_tree.subtree_coeff_count tree 2);
  checki "T_6" 1 (Error_tree.subtree_coeff_count tree 6);
  checki "leaf" 0 (Error_tree.subtree_coeff_count tree 9)

let test_tree_signs_and_leaves () =
  checki "root to child" 1 (Error_tree.sign_to_child tree ~node:0 ~child:1);
  checki "left" 1 (Error_tree.sign_to_child tree ~node:3 ~child:6);
  checki "right" (-1) (Error_tree.sign_to_child tree ~node:3 ~child:7);
  check "leaves under 3" true (Error_tree.leaves_under tree 3 = (4, 8));
  check "leaves under root" true (Error_tree.leaves_under tree 0 = (0, 8));
  check "leaves under leaf 10" true (Error_tree.leaves_under tree 10 = (2, 3))

let () =
  Alcotest.run "haar1d"
    [
      ( "paper example",
        [
          Alcotest.test_case "decomposition W_A" `Quick test_paper_decomposition;
          Alcotest.test_case "resolution table" `Quick test_paper_resolution_table;
          Alcotest.test_case "reconstruction" `Quick test_paper_reconstruction;
          Alcotest.test_case "d4 identity (Fig 1a)" `Quick test_paper_d4_identity;
          Alcotest.test_case "all points" `Quick test_all_points_match;
        ] );
      ( "transform",
        [
          Alcotest.test_case "rejects non-pow2" `Quick test_rejects_non_pow2;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "pad_pow2" `Quick test_pad_pow2;
          Alcotest.test_case "roundtrip sizes" `Quick test_roundtrip_sizes;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_point_matches_reconstruct;
          QCheck_alcotest.to_alcotest prop_linearity;
          QCheck_alcotest.to_alcotest prop_parseval;
        ] );
      ( "structure",
        [
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "supports" `Quick test_supports;
          Alcotest.test_case "signs" `Quick test_signs;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "point_from_set" `Quick test_point_from_set;
          QCheck_alcotest.to_alcotest prop_path_sign_reconstruction;
        ] );
      ( "error tree",
        [
          Alcotest.test_case "shape" `Quick test_tree_shape;
          Alcotest.test_case "parent/depth" `Quick test_tree_parent_depth;
          Alcotest.test_case "ancestors" `Quick test_tree_ancestors;
          Alcotest.test_case "values" `Quick test_tree_values;
          Alcotest.test_case "subtree counts" `Quick test_tree_subtree_counts;
          Alcotest.test_case "signs and leaves" `Quick test_tree_signs_and_leaves;
        ] );
    ]
