(* Tests for Progressive (nested refinement chains), Quantiles, and
   bounded range sums. *)

module Progressive = Wavesyn_core.Progressive
module Minmax_dp = Wavesyn_core.Minmax_dp
module Greedy_maxerr = Wavesyn_baselines.Greedy_maxerr
module Quantiles = Wavesyn_aqp.Quantiles
module Synopsis = Wavesyn_synopsis.Synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Range_query = Wavesyn_synopsis.Range_query
module Greedy_l2 = Wavesyn_baselines.Greedy_l2
module Signal = Wavesyn_datagen.Signal
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

let random_data ~seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun _ -> Prng.float rng 40. -. 20.)

(* --- Progressive --- *)

let test_progressive_chain_structure () =
  let data = random_data ~seed:1 32 in
  let p = Progressive.build ~data ~max_budget:8 Metrics.Abs in
  let steps = Progressive.steps p in
  checki "eight steps" 8 (List.length steps);
  List.iteri
    (fun k s -> checki "budget numbering" (k + 1) s.Progressive.budget)
    steps;
  (* No repeated coefficients. *)
  let coeffs = List.map (fun s -> s.Progressive.coefficient) steps in
  checki "distinct coefficients" 8 (List.length (List.sort_uniq compare coeffs))

let test_progressive_guarantees_monotone () =
  let data = random_data ~seed:2 64 in
  List.iter
    (fun metric ->
      let p = Progressive.build ~data ~max_budget:16 metric in
      let prev = ref (Progressive.initial_guarantee p) in
      List.iter
        (fun s ->
          check "guarantee never grows" true (s.Progressive.guarantee <= !prev +. 1e-9);
          prev := s.Progressive.guarantee)
        (Progressive.steps p))
    [ Metrics.Abs; Metrics.Rel { sanity = 1. } ]

let test_progressive_guarantees_exact () =
  let data = random_data ~seed:3 32 in
  let p = Progressive.build ~data ~max_budget:6 Metrics.Abs in
  for b = 0 to 6 do
    let syn = Progressive.synopsis_at p ~budget:b in
    let measured = Metrics.of_synopsis Metrics.Abs ~data syn in
    check
      (Printf.sprintf "prefix %d guarantee matches measurement" b)
      true
      (Float_util.approx_equal ~eps:1e-9 measured (Progressive.guarantee_at p ~budget:b))
  done

let test_progressive_prefixes_nested () =
  let data = random_data ~seed:4 32 in
  let p = Progressive.build ~data ~max_budget:8 Metrics.Abs in
  for b = 1 to 8 do
    let small = Synopsis.coeffs (Progressive.synopsis_at p ~budget:(b - 1)) in
    let large = Synopsis.coeffs (Progressive.synopsis_at p ~budget:b) in
    check
      (Printf.sprintf "prefix %d nested in %d" (b - 1) b)
      true
      (List.for_all (fun c -> List.mem c large) small)
  done

let test_progressive_matches_greedy_maxerr () =
  (* The chain's prefix of size B is exactly the greedy heuristic's
     output for budget B. *)
  let data = random_data ~seed:5 32 in
  let p = Progressive.build ~data ~max_budget:6 Metrics.Abs in
  List.iter
    (fun b ->
      let chain = Progressive.synopsis_at p ~budget:b in
      let greedy = Greedy_maxerr.threshold ~data ~budget:b Metrics.Abs in
      check
        (Printf.sprintf "prefix %d equals greedy" b)
        true
        (List.sort compare (Synopsis.coeffs chain)
        = List.sort compare (Synopsis.coeffs greedy)))
    [ 1; 3; 6 ]

let test_progressive_price_of_nestedness () =
  (* Prefixes can be worse than the per-budget optimum, never better. *)
  let data = random_data ~seed:6 32 in
  let p = Progressive.build ~data ~max_budget:8 Metrics.Abs in
  for b = 0 to 8 do
    let opt = (Minmax_dp.solve ~data ~budget:b Metrics.Abs).Minmax_dp.max_err in
    check
      (Printf.sprintf "prefix %d >= optimum" b)
      true
      (Progressive.guarantee_at p ~budget:b >= opt -. 1e-9)
  done

let test_progressive_exhausts_coefficients () =
  let data = [| 5.; 5.; 5.; 5. |] in
  (* only c0 is non-zero *)
  let p = Progressive.build ~data ~max_budget:10 Metrics.Abs in
  checki "chain stops at non-zero count" 1 (List.length (Progressive.steps p));
  checkf "final guarantee zero" 0. (Progressive.guarantee_at p ~budget:10)

(* --- Quantiles --- *)

let test_quantiles_exact_reference () =
  let data = [| 1.; 1.; 2.; 4. |] in
  (* cumulative: 1, 2, 4, 8; total 8 *)
  checki "q=0" 0 (Quantiles.exact data ~q:0.);
  checki "q=0.25" 1 (Quantiles.exact data ~q:0.25);
  checki "median" 2 (Quantiles.exact data ~q:0.5);
  checki "q=1" 3 (Quantiles.exact data ~q:1.)

let test_quantiles_full_synopsis_matches_exact () =
  let rng = Prng.create ~seed:7 in
  let data = Array.init 64 (fun _ -> Prng.float rng 10.) in
  let syn = Greedy_l2.threshold ~data ~budget:64 in
  List.iter
    (fun q ->
      checki
        (Printf.sprintf "q=%g" q)
        (Quantiles.exact data ~q)
        (Quantiles.estimate syn ~q))
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let test_quantiles_small_synopsis_close () =
  let rng = Prng.create ~seed:8 in
  let bumps = Signal.gaussian_bumps ~rng ~n:128 ~bumps:3 ~amplitude:100. in
  let data = Array.map (fun x -> x +. 1.) bumps in
  let syn = Greedy_l2.threshold ~data ~budget:16 in
  List.iter
    (fun q ->
      let e = Quantiles.exact data ~q in
      let a = Quantiles.estimate syn ~q in
      check
        (Printf.sprintf "q=%g within 8 positions (%d vs %d)" q a e)
        true
        (abs (a - e) <= 8))
    [ 0.25; 0.5; 0.75 ]

(* The query server's QUANTILE hot path: the boundary q values a remote
   client can legally send, on full and thresholded synopses alike. *)
let test_quantiles_boundary_q () =
  let data = [| 1.; 1.; 2.; 4. |] in
  let syn = Greedy_l2.threshold ~data ~budget:4 in
  (* q=0: the smallest position whose cumulative reaches 0 — position 0
     whenever the first reconstructed frequency is non-negative. *)
  checki "estimate q=0" (Quantiles.exact data ~q:0.) (Quantiles.estimate syn ~q:0.);
  checki "estimate q=0 is 0" 0 (Quantiles.estimate syn ~q:0.);
  (* q=1: the full cumulative mass — never past the domain end. *)
  checki "estimate q=1" (Quantiles.exact data ~q:1.) (Quantiles.estimate syn ~q:1.);
  check "estimate q=1 in domain" true (Quantiles.estimate syn ~q:1. <= 3);
  (* A thresholded synopsis still answers both boundaries in-domain. *)
  let rng = Prng.create ~seed:11 in
  let big = Array.init 64 (fun _ -> Prng.float rng 10.) in
  let small = Greedy_l2.threshold ~data:big ~budget:6 in
  List.iter
    (fun q ->
      let p = Quantiles.estimate small ~q in
      check (Printf.sprintf "q=%g in domain" q) true (p >= 0 && p <= 63))
    [ 0.; 1. ];
  (* Monotonicity across the boundaries: q=0 <= median <= q=1. *)
  let m = Quantiles.median small in
  check "q=0 <= median" true (Quantiles.estimate small ~q:0. <= m);
  check "median <= q=1" true (m <= Quantiles.estimate small ~q:1.);
  (* Degenerate single-cell domain: every q answers position 0. *)
  let one = Synopsis.make ~n:1 [ (0, 3.) ] in
  List.iter
    (fun q -> checki (Printf.sprintf "n=1 q=%g" q) 0 (Quantiles.estimate one ~q))
    [ 0.; 0.5; 1. ]

let test_quantiles_validation () =
  let syn = Synopsis.make ~n:8 [ (0, 1.) ] in
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Quantiles: q must be in [0, 1]")
    (fun () -> ignore (Quantiles.estimate syn ~q:1.5));
  let zero = Synopsis.make ~n:8 [] in
  Alcotest.check_raises "zero total"
    (Invalid_argument "Quantiles: estimated total is not positive")
    (fun () -> ignore (Quantiles.median zero))

(* --- bounded range sums --- *)

let test_bounded_range_sum_contains_truth () =
  let rng = Prng.create ~seed:9 in
  for trial = 1 to 10 do
    let data = Array.init 64 (fun _ -> Prng.float rng 40. -. 20.) in
    let r = Minmax_dp.solve ~data ~budget:8 Metrics.Abs in
    let bound = r.Minmax_dp.max_err in
    let lo = Prng.int rng 32 in
    let hi = lo + Prng.int rng (64 - lo) in
    let estimate, half =
      Range_query.range_sum_bounded r.Minmax_dp.synopsis ~per_cell_bound:bound
        ~lo ~hi
    in
    let exact = Range_query.range_sum_exact data ~lo ~hi in
    check
      (Printf.sprintf "trial %d interval contains exact (%g in %g +- %g)"
         trial exact estimate half)
      true
      (Float.abs (exact -. estimate) <= half +. 1e-9)
  done

let test_bounded_range_sum_validation () =
  let syn = Synopsis.make ~n:8 [] in
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Range_query.range_sum_bounded: negative bound")
    (fun () ->
      ignore (Range_query.range_sum_bounded syn ~per_cell_bound:(-1.) ~lo:0 ~hi:3))

let () =
  Alcotest.run "progressive_quantiles"
    [
      ( "progressive",
        [
          Alcotest.test_case "chain structure" `Quick test_progressive_chain_structure;
          Alcotest.test_case "guarantees monotone" `Quick test_progressive_guarantees_monotone;
          Alcotest.test_case "guarantees exact" `Quick test_progressive_guarantees_exact;
          Alcotest.test_case "prefixes nested" `Quick test_progressive_prefixes_nested;
          Alcotest.test_case "matches greedy" `Quick test_progressive_matches_greedy_maxerr;
          Alcotest.test_case "price of nestedness" `Quick test_progressive_price_of_nestedness;
          Alcotest.test_case "exhausts coefficients" `Quick test_progressive_exhausts_coefficients;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "exact reference" `Quick test_quantiles_exact_reference;
          Alcotest.test_case "full synopsis" `Quick test_quantiles_full_synopsis_matches_exact;
          Alcotest.test_case "small synopsis" `Quick test_quantiles_small_synopsis_close;
          Alcotest.test_case "boundary q" `Quick test_quantiles_boundary_q;
          Alcotest.test_case "validation" `Quick test_quantiles_validation;
        ] );
      ( "bounded range sums",
        [
          Alcotest.test_case "interval contains truth" `Quick test_bounded_range_sum_contains_truth;
          Alcotest.test_case "validation" `Quick test_bounded_range_sum_validation;
        ] );
    ]
