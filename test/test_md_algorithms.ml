(* Validation of the Section 3.2 multi-dimensional algorithms:
   - Pseudo_poly (optimal integer DP) against brute force and against
     the exact 1-D MinMaxErr DP;
   - Approx_additive against its Theorem 3.2 guarantee;
   - Approx_abs against its Theorem 3.4 (1+eps) guarantee. *)

module Minmax_dp = Wavesyn_core.Minmax_dp
module Brute_force = Wavesyn_core.Brute_force
module Pseudo_poly = Wavesyn_core.Pseudo_poly
module Approx_additive = Wavesyn_core.Approx_additive
module Approx_abs = Wavesyn_core.Approx_abs
module Md_tree = Wavesyn_haar.Md_tree
module Ndarray = Wavesyn_util.Ndarray
module Synopsis = Wavesyn_synopsis.Synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let int_signal rng n bound =
  Array.init n (fun _ -> float_of_int (Prng.int rng (2 * bound) - bound))

let int_grid rng side bound =
  Ndarray.init ~dims:[| side; side |] (fun _ ->
      float_of_int (Prng.int rng (2 * bound) - bound))

(* --- Pseudo_poly: optimal integer DP --- *)

let test_pseudo_poly_matches_minmax_1d () =
  let rng = Prng.create ~seed:41 in
  List.iter
    (fun n ->
      List.iter
        (fun budget ->
          List.iter
            (fun metric ->
              let data = int_signal rng n 10 in
              let exact = Minmax_dp.solve ~data ~budget metric in
              let pp, _ = Pseudo_poly.solve_1d ~data ~budget metric in
              check
                (Printf.sprintf "n=%d B=%d pseudo-poly = minmax (%g vs %g)" n
                   budget pp exact.Minmax_dp.max_err)
                true
                (Float_util.approx_equal ~eps:1e-9 pp exact.Minmax_dp.max_err))
            [ Metrics.Abs; Metrics.Rel { sanity = 1.0 } ])
        [ 0; 1; 3; 5 ])
    [ 4; 8; 16 ]

let test_pseudo_poly_matches_brute_2d () =
  let rng = Prng.create ~seed:42 in
  List.iter
    (fun budget ->
      List.iter
        (fun metric ->
          let data = int_grid rng 4 8 in
          let tree = Md_tree.of_data data in
          let brute, _ = Brute_force.optimal_md ~tree ~budget metric in
          let r = Pseudo_poly.solve_int_data ~data ~budget metric in
          check
            (Printf.sprintf "2d B=%d pseudo-poly = brute (%g vs %g)" budget
               r.Pseudo_poly.max_err brute)
            true
            (Float_util.approx_equal ~eps:1e-9 r.Pseudo_poly.max_err brute);
          let measured =
            Metrics.of_md_synopsis metric ~data r.Pseudo_poly.synopsis
          in
          check
            (Printf.sprintf "2d B=%d synopsis achieves value" budget)
            true
            (Float_util.approx_equal ~eps:1e-9 r.Pseudo_poly.max_err measured);
          check "budget respected" true
            (Synopsis.Md.size r.Pseudo_poly.synopsis <= budget))
        [ Metrics.Abs; Metrics.Rel { sanity = 2.0 } ])
    [ 0; 1; 2; 4 ]

let test_pseudo_poly_rejects_non_integral () =
  let data = Ndarray.of_flat_array ~dims:[| 2 |] [| 0.5; 0.25 |] in
  let tree = Md_tree.of_data data in
  Alcotest.check_raises "non-integral scaled coefficients"
    (Invalid_argument "Pseudo_poly: scaled coefficient is not integral")
    (fun () ->
      ignore (Pseudo_poly.solve_scaled ~tree ~budget:1 ~scale:1. Metrics.Abs))

let test_pseudo_poly_full_budget () =
  let rng = Prng.create ~seed:43 in
  let data = int_grid rng 4 10 in
  let r = Pseudo_poly.solve_int_data ~data ~budget:16 Metrics.Abs in
  checkf "full budget exact" 0. r.Pseudo_poly.max_err

(* --- Approx_additive: Theorem 3.2 --- *)

let test_additive_1d_guarantee () =
  let rng = Prng.create ~seed:44 in
  List.iter
    (fun (n, budget, epsilon) ->
      List.iter
        (fun metric ->
          let data = Array.init n (fun _ -> Prng.float rng 40. -. 20.) in
          let opt = (Minmax_dp.solve ~data ~budget metric).Minmax_dp.max_err in
          let tree =
            Md_tree.of_data (Ndarray.of_flat_array ~dims:[| n |] data)
          in
          let slack = Approx_additive.guarantee_bound ~tree ~epsilon metric in
          let measured, syn = Approx_additive.solve_1d ~data ~budget ~epsilon metric in
          check
            (Printf.sprintf "1d n=%d B=%d eps=%g within guarantee (%g vs %g + %g)"
               n budget epsilon measured opt slack)
            true
            (measured <= opt +. slack +. 1e-9);
          check "budget respected" true (Synopsis.size syn <= budget))
        [ Metrics.Abs; Metrics.Rel { sanity = 1.0 } ])
    [ (8, 2, 0.5); (8, 3, 0.2); (16, 4, 0.3); (16, 2, 0.1); (32, 5, 0.25) ]

let test_additive_1d_converges_to_optimal () =
  (* With a very small per-rounding epsilon the scheme should find the
     true optimum on small instances. *)
  let rng = Prng.create ~seed:45 in
  for trial = 1 to 5 do
    let data = Array.init 8 (fun _ -> Prng.float rng 20. -. 10.) in
    let budget = 2 in
    let opt = (Minmax_dp.solve ~data ~budget Metrics.Abs).Minmax_dp.max_err in
    let measured, _ =
      Approx_additive.solve_1d ~data ~budget ~epsilon:0.005 Metrics.Abs
    in
    check
      (Printf.sprintf "trial %d near-optimal (%g vs %g)" trial measured opt)
      true
      (measured <= opt *. 1.1 +. 1e-9)
  done

let test_additive_2d_guarantee () =
  let rng = Prng.create ~seed:46 in
  List.iter
    (fun (budget, epsilon) ->
      let data = int_grid rng 4 10 in
      let tree = Md_tree.of_data data in
      let opt, _ = Brute_force.optimal_md ~tree ~budget Metrics.Abs in
      let slack = Approx_additive.guarantee_bound ~tree ~epsilon Metrics.Abs in
      let r = Approx_additive.solve_tree ~tree ~budget ~epsilon Metrics.Abs in
      check
        (Printf.sprintf "2d B=%d eps=%g within guarantee (%g vs %g + %g)"
           budget epsilon r.Approx_additive.measured opt slack)
        true
        (r.Approx_additive.measured <= opt +. slack +. 1e-9);
      check "budget respected" true
        (Synopsis.Md.size r.Approx_additive.synopsis <= budget))
    [ (1, 0.3); (2, 0.2); (4, 0.1); (3, 0.05) ]

let test_additive_2d_rel_guarantee () =
  let rng = Prng.create ~seed:47 in
  let metric = Metrics.Rel { sanity = 2.0 } in
  let data = int_grid rng 4 10 in
  let tree = Md_tree.of_data data in
  let budget = 3 and epsilon = 0.1 in
  let opt, _ = Brute_force.optimal_md ~tree ~budget metric in
  let slack = Approx_additive.guarantee_bound ~tree ~epsilon metric in
  let r = Approx_additive.solve_tree ~tree ~budget ~epsilon metric in
  check "2d relative within guarantee" true
    (r.Approx_additive.measured <= opt +. slack +. 1e-9)

let test_additive_monotone_epsilon () =
  (* Smaller epsilon should never give a (meaningfully) worse result. *)
  let rng = Prng.create ~seed:48 in
  let data = Array.init 16 (fun _ -> Prng.float rng 100. -. 50.) in
  let err eps =
    fst (Approx_additive.solve_1d ~data ~budget:4 ~epsilon:eps Metrics.Abs)
  in
  let coarse = err 0.9 and fine = err 0.01 in
  check
    (Printf.sprintf "fine <= coarse + tolerance (%g vs %g)" fine coarse)
    true
    (fine <= coarse +. 1e-9)

let test_additive_zero_data () =
  let r =
    Approx_additive.solve
      ~data:(Ndarray.create ~dims:[| 4; 4 |] 0.)
      ~budget:2 ~epsilon:0.2 Metrics.Abs
  in
  checkf "zero data zero error" 0. r.Approx_additive.measured

let test_additive_epsilon_validation () =
  Alcotest.check_raises "epsilon 0 rejected"
    (Invalid_argument "Approx_additive: epsilon must be in (0, 1]")
    (fun () ->
      ignore
        (Approx_additive.solve
           ~data:(Ndarray.create ~dims:[| 4 |] 1.)
           ~budget:1 ~epsilon:0. Metrics.Abs))

let test_theorem_epsilon_scaling () =
  let tree = Md_tree.of_data (Ndarray.create ~dims:[| 4; 4 |] 1.) in
  let eps' = Approx_additive.theorem_epsilon ~tree 0.4 in
  checkf "eps' = eps / (2^D log N)" (0.4 /. (4. *. 4.)) eps'

(* --- Approx_abs: Theorem 3.4 --- *)

let test_approx_abs_guarantee_2d () =
  let rng = Prng.create ~seed:49 in
  List.iter
    (fun (budget, epsilon) ->
      let data = int_grid rng 4 12 in
      let opt =
        (Pseudo_poly.solve_int_data ~data ~budget Metrics.Abs).Pseudo_poly.max_err
      in
      let r = Approx_abs.solve ~data ~budget ~epsilon () in
      let bound = ((1. +. (4. *. epsilon)) *. opt) +. 1e-9 in
      check
        (Printf.sprintf "B=%d eps=%g within (1+4eps) (%g vs opt %g)" budget
           epsilon r.Approx_abs.max_err opt)
        true
        (r.Approx_abs.max_err <= bound);
      check "budget respected" true
        (Synopsis.Md.size r.Approx_abs.synopsis <= budget))
    [ (1, 0.5); (2, 0.25); (4, 0.25); (3, 0.1) ]

let test_approx_abs_guarantee_1d () =
  let rng = Prng.create ~seed:50 in
  List.iter
    (fun (n, budget, epsilon) ->
      let data = int_signal rng n 20 in
      let opt = (Minmax_dp.solve ~data ~budget Metrics.Abs).Minmax_dp.max_err in
      let measured, syn = Approx_abs.solve_1d ~data ~budget ~epsilon () in
      check
        (Printf.sprintf "1d n=%d B=%d eps=%g within (1+4eps) (%g vs %g)" n
           budget epsilon measured opt)
        true
        (measured <= ((1. +. (4. *. epsilon)) *. opt) +. 1e-9);
      check "budget" true (Synopsis.size syn <= budget))
    [ (8, 2, 0.5); (16, 4, 0.25); (16, 3, 0.1); (32, 5, 0.25) ]

let test_approx_abs_converges () =
  let rng = Prng.create ~seed:51 in
  let data = int_signal rng 16 15 in
  let budget = 4 in
  let opt = (Minmax_dp.solve ~data ~budget Metrics.Abs).Minmax_dp.max_err in
  let fine, _ = Approx_abs.solve_1d ~data ~budget ~epsilon:0.02 () in
  check
    (Printf.sprintf "eps=0.02 essentially optimal (%g vs %g)" fine opt)
    true
    (fine <= (opt *. 1.09) +. 1e-9)

let test_approx_abs_zero_data () =
  let r =
    Approx_abs.solve ~data:(Ndarray.create ~dims:[| 4; 4 |] 0.) ~budget:3
      ~epsilon:0.2 ()
  in
  checkf "zero data" 0. r.Approx_abs.max_err

let test_approx_abs_budget_zero () =
  let rng = Prng.create ~seed:52 in
  let data = int_grid rng 4 10 in
  let r = Approx_abs.solve ~data ~budget:0 ~epsilon:0.5 () in
  let flat = Ndarray.to_flat_array data in
  checkf "B=0 error is max |d|" (Float_util.max_abs flat) r.Approx_abs.max_err

let test_theorem_epsilon_abs () =
  checkf "eps/4" 0.1 (Approx_abs.theorem_epsilon 0.4)

(* Cross-validation: the three exact/near-exact solvers agree on the
   paper's running example. *)
let test_paper_example_cross_check () =
  let data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |] in
  List.iter
    (fun budget ->
      let exact = (Minmax_dp.solve ~data ~budget Metrics.Abs).Minmax_dp.max_err in
      let pp, _ = Pseudo_poly.solve_1d ~data ~budget Metrics.Abs in
      let aa, _ = Approx_abs.solve_1d ~data ~budget ~epsilon:0.05 () in
      checkf (Printf.sprintf "pseudo-poly B=%d" budget) exact pp;
      check
        (Printf.sprintf "approx-abs B=%d close (%g vs %g)" budget aa exact)
        true
        (aa <= (exact *. 1.2) +. 1e-9))
    [ 1; 2; 3; 4; 5 ]


(* --- three-dimensional instances and larger cross-validation --- *)

let int_cube rng side bound =
  Ndarray.init ~dims:[| side; side; side |] (fun _ ->
      float_of_int (Prng.int rng bound))

let test_pseudo_poly_3d_matches_brute () =
  let rng = Prng.create ~seed:60 in
  let data = int_cube rng 2 12 in
  let tree = Md_tree.of_data data in
  List.iter
    (fun budget ->
      let brute, _ = Brute_force.optimal_md ~tree ~budget Metrics.Abs in
      let r = Pseudo_poly.solve_int_data ~data ~budget Metrics.Abs in
      check
        (Printf.sprintf "3d B=%d (%g vs %g)" budget r.Pseudo_poly.max_err brute)
        true
        (Float_util.approx_equal ~eps:1e-9 r.Pseudo_poly.max_err brute))
    [ 0; 1; 2; 3 ]

let test_additive_3d_guarantee () =
  let rng = Prng.create ~seed:61 in
  let data = int_cube rng 4 16 in
  let tree = Md_tree.of_data data in
  let budget = 6 in
  let opt =
    (Pseudo_poly.solve_int_data ~data ~budget Metrics.Abs).Pseudo_poly.max_err
  in
  List.iter
    (fun epsilon ->
      let slack = Approx_additive.guarantee_bound ~tree ~epsilon Metrics.Abs in
      let r = Approx_additive.solve_tree ~tree ~budget ~epsilon Metrics.Abs in
      check
        (Printf.sprintf "3d eps=%g within guarantee (%g vs %g + %g)" epsilon
           r.Approx_additive.measured opt slack)
        true
        (r.Approx_additive.measured <= opt +. slack +. 1e-9))
    [ 0.3; 0.1 ]

let test_approx_abs_3d_guarantee () =
  let rng = Prng.create ~seed:62 in
  let data = int_cube rng 4 16 in
  let budget = 5 in
  let opt =
    (Pseudo_poly.solve_int_data ~data ~budget Metrics.Abs).Pseudo_poly.max_err
  in
  List.iter
    (fun epsilon ->
      let r = Approx_abs.solve ~data ~budget ~epsilon () in
      check
        (Printf.sprintf "3d eps=%g within 1+4eps (%g vs %g)" epsilon
           r.Approx_abs.max_err opt)
        true
        (r.Approx_abs.max_err <= ((1. +. (4. *. epsilon)) *. opt) +. 1e-9))
    [ 0.5; 0.2 ]

let test_pseudo_poly_larger_1d_cross_validation () =
  let rng = Prng.create ~seed:63 in
  List.iter
    (fun n ->
      let data = int_signal rng n 25 in
      List.iter
        (fun budget ->
          List.iter
            (fun metric ->
              let exact = Minmax_dp.solve ~data ~budget metric in
              let pp, _ = Pseudo_poly.solve_1d ~data ~budget metric in
              check
                (Printf.sprintf "n=%d B=%d (%g vs %g)" n budget pp
                   exact.Minmax_dp.max_err)
                true
                (Float_util.approx_equal ~eps:1e-9 pp exact.Minmax_dp.max_err))
            [ Metrics.Abs; Metrics.Rel { sanity = 2.0 } ])
        [ 2; 7; 13 ])
    [ 32; 64 ]

let test_additive_budget_monotone () =
  (* The DP's internal (rounded) objective is monotone in the budget.
     Note: the MEASURED error of the returned synopsis is not always -
     with coarse rounding a larger budget can select a synopsis whose
     true error is slightly worse, while staying within the Theorem 3.2
     guarantee; that is an inherent property of the approximation, so
     we assert monotonicity of the bound and check the guarantee for
     the measured values. *)
  let rng = Prng.create ~seed:64 in
  let data = int_grid rng 8 20 in
  let tree = Md_tree.of_data data in
  let epsilon = 0.1 in
  let results =
    List.map
      (fun budget ->
        ( budget,
          Approx_additive.solve_tree ~tree ~budget ~epsilon Metrics.Abs ))
      [ 0; 2; 4; 8; 16; 64 ]
  in
  let rec non_increasing = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        check
          (Printf.sprintf "bound monotone (%g then %g)"
             a.Approx_additive.bound b.Approx_additive.bound)
          true
          (b.Approx_additive.bound <= a.Approx_additive.bound +. 1e-9);
        non_increasing rest
    | _ -> ()
  in
  non_increasing results;
  let slack = Approx_additive.guarantee_bound ~tree ~epsilon Metrics.Abs in
  List.iter
    (fun (budget, r) ->
      let opt =
        (Pseudo_poly.solve_int_data ~data ~budget Metrics.Abs)
          .Pseudo_poly.max_err
      in
      check
        (Printf.sprintf "B=%d measured %g within opt %g + slack %g" budget
           r.Approx_additive.measured opt slack)
        true
        (r.Approx_additive.measured <= opt +. slack +. 1e-9))
    results;
  let _, full = List.nth results 5 in
  check "full budget exact" true (full.Approx_additive.measured <= 1e-9)

(* Regression for the integer-key overflow: a pathological coefficient
   spread (a 1e18 spike over unit-scale values) makes the smallest τ
   candidates scale coefficients past the exactly-representable integer
   range, where [int_of_float] keys are unspecified. Those τ must be
   skipped — visible in [sweeps] — while the surviving sweep still
   meets the (1 + 4ε) guarantee (the skipped τ are far below the
   largest dropped coefficient, so Proposition 3.3 never needs them). *)
let test_approx_abs_overflow_guard () =
  let data = [| 1e18; 2.; 1.; 3.; 1.; 2.; 1.; 0.5 |] in
  let budget = 5 in
  let epsilon = 0.25 in
  let nd = Ndarray.of_flat_array ~dims:[| 8 |] data in
  let r = Approx_abs.solve ~data:nd ~budget ~epsilon () in
  (* 61 power-of-two candidates cover the clamped coefficient range;
     the three smallest (τ = 1/2, 1, 2) scale the 5e17 top coefficient
     past 2^62 and must not run. *)
  Alcotest.(check int) "overflowing tau candidates skipped" 58 r.Approx_abs.sweeps;
  check "error finite" true (Float.is_finite r.Approx_abs.max_err);
  let opt = (Minmax_dp.solve ~data ~budget Metrics.Abs).Minmax_dp.max_err in
  check
    (Printf.sprintf "guarantee holds under spread (%g vs opt %g)"
       r.Approx_abs.max_err opt)
    true
    (r.Approx_abs.max_err <= ((1. +. (4. *. epsilon)) *. opt) +. 1e-9);
  (* denormal territory: K_τ underflows to 0 for the smallest τ, making
     the scaled magnitude infinite — also guarded, never crashes. *)
  let tiny = [| 1e-290; 2e-308; 0.; 4e-308; 1e-300; 0.; 3e-308; 0. |] in
  let err, _ = Approx_abs.solve_1d ~data:tiny ~budget:3 ~epsilon () in
  check "denormal spread yields a finite error" true (Float.is_finite err)

let test_approx_abs_budget_monotone () =
  let rng = Prng.create ~seed:65 in
  let data = int_grid rng 8 20 in
  let errs =
    List.map
      (fun budget ->
        (Approx_abs.solve ~data ~budget ~epsilon:0.25 ()).Approx_abs.max_err)
      [ 0; 2; 4; 8; 16 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
        check "monotone" true (b <= a +. 1e-9);
        non_increasing rest
    | _ -> ()
  in
  non_increasing errs

let prop_pseudo_poly_matches_minmax =
  QCheck.Test.make ~name:"pseudo-poly = MinMaxErr on random integer data"
    ~count:40
    QCheck.(
      pair
        (array_of_size (Gen.oneofl [ 8; 16 ]) (int_range (-15) 15))
        (int_bound 5))
    (fun (ints, budget) ->
      let data = Array.map float_of_int ints in
      let exact = (Minmax_dp.solve ~data ~budget Metrics.Abs).Minmax_dp.max_err in
      let pp, _ = Pseudo_poly.solve_1d ~data ~budget Metrics.Abs in
      Float_util.approx_equal ~eps:1e-9 pp exact)

let () =
  Alcotest.run "md_algorithms"
    [
      ( "pseudo_poly",
        [
          Alcotest.test_case "matches MinMaxErr in 1d" `Quick test_pseudo_poly_matches_minmax_1d;
          Alcotest.test_case "matches brute force in 2d" `Quick test_pseudo_poly_matches_brute_2d;
          Alcotest.test_case "rejects non-integral" `Quick test_pseudo_poly_rejects_non_integral;
          Alcotest.test_case "full budget" `Quick test_pseudo_poly_full_budget;
          Alcotest.test_case "3d matches brute" `Quick test_pseudo_poly_3d_matches_brute;
          Alcotest.test_case "larger 1d cross-validation" `Quick test_pseudo_poly_larger_1d_cross_validation;
          QCheck_alcotest.to_alcotest prop_pseudo_poly_matches_minmax;
        ] );
      ( "approx_additive",
        [
          Alcotest.test_case "1d guarantee" `Quick test_additive_1d_guarantee;
          Alcotest.test_case "1d convergence" `Quick test_additive_1d_converges_to_optimal;
          Alcotest.test_case "2d guarantee (abs)" `Quick test_additive_2d_guarantee;
          Alcotest.test_case "2d guarantee (rel)" `Quick test_additive_2d_rel_guarantee;
          Alcotest.test_case "monotone in epsilon" `Quick test_additive_monotone_epsilon;
          Alcotest.test_case "zero data" `Quick test_additive_zero_data;
          Alcotest.test_case "epsilon validation" `Quick test_additive_epsilon_validation;
          Alcotest.test_case "theorem epsilon" `Quick test_theorem_epsilon_scaling;
          Alcotest.test_case "3d guarantee" `Quick test_additive_3d_guarantee;
          Alcotest.test_case "budget monotone" `Quick test_additive_budget_monotone;
        ] );
      ( "approx_abs",
        [
          Alcotest.test_case "2d (1+4eps) guarantee" `Quick test_approx_abs_guarantee_2d;
          Alcotest.test_case "1d (1+4eps) guarantee" `Quick test_approx_abs_guarantee_1d;
          Alcotest.test_case "convergence" `Quick test_approx_abs_converges;
          Alcotest.test_case "zero data" `Quick test_approx_abs_zero_data;
          Alcotest.test_case "budget zero" `Quick test_approx_abs_budget_zero;
          Alcotest.test_case "theorem epsilon" `Quick test_theorem_epsilon_abs;
          Alcotest.test_case "paper example cross-check" `Quick test_paper_example_cross_check;
          Alcotest.test_case "3d guarantee" `Quick test_approx_abs_3d_guarantee;
          Alcotest.test_case "budget monotone" `Quick test_approx_abs_budget_monotone;
          Alcotest.test_case "overflow guard" `Quick test_approx_abs_overflow_guard;
        ] );
    ]
