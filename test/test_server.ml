(* Tests for the network serving subsystem: wire protocol framing,
   admission control, and live end-to-end rounds over a Unix socket. *)

module Wire = Wavesyn_server.Wire
module Admit = Wavesyn_server.Admit
module Server = Wavesyn_server.Server
module Client = Wavesyn_server.Client
module Loadgen = Wavesyn_server.Loadgen
module Registry = Wavesyn_obs.Registry
module Validate = Wavesyn_robust.Validate
module Prng = Wavesyn_util.Prng

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-12))

(* --- wire framing --- *)

let roundtrip_request r =
  let frame = Wire.encode_request r in
  match
    Wire.decode
      (Bytes.of_string frame)
      ~pos:0
      ~len:(String.length frame)
  with
  | `Frame (Wire.Req r', consumed) ->
      checki "whole frame consumed" (String.length frame) consumed;
      check ("roundtrip " ^ Wire.describe_request r) true (r = r')
  | `Frame (Wire.Rep _, _) -> Alcotest.fail "decoded as reply"
  | `Incomplete -> Alcotest.fail "incomplete"
  | `Corrupt reason -> Alcotest.fail ("corrupt: " ^ reason)

let roundtrip_reply r =
  let frame = Wire.encode_reply r in
  match
    Wire.decode
      (Bytes.of_string frame)
      ~pos:0
      ~len:(String.length frame)
  with
  | `Frame (Wire.Rep r', consumed) ->
      checki "whole frame consumed" (String.length frame) consumed;
      check ("roundtrip " ^ Wire.describe_reply r) true (r = r')
  | `Frame (Wire.Req _, _) -> Alcotest.fail "decoded as request"
  | `Incomplete -> Alcotest.fail "incomplete"
  | `Corrupt reason -> Alcotest.fail ("corrupt: " ^ reason)

let test_wire_roundtrip () =
  List.iter roundtrip_request
    [
      Wire.Ping;
      Wire.Point 0;
      Wire.Point 123456789;
      Wire.Range { lo = 0; hi = 63 };
      Wire.Quantile 0.5;
      Wire.Quantile 1e-300;
      Wire.Stats;
      Wire.Shutdown;
      Wire.Batch [ Wire.Ping; Wire.Point 3; Wire.Range { lo = 1; hi = 2 } ];
      Wire.Batch [];
      Wire.Sync { since = 0; max = 0 };
      Wire.Sync { since = 123456789; max = 256 };
      Wire.Handoff;
      Wire.Update { i = 0; delta = 0.5 };
      Wire.Update { i = 123456; delta = -1.25e-300 };
      Wire.Ingest [ (3, 0.5); (7, -0.25); (3, 1.5) ];
      Wire.Ingest [];
      Wire.Batch [ Wire.Update { i = 2; delta = 1.0 }; Wire.Point 2 ];
    ];
  List.iter roundtrip_reply
    [
      Wire.Pong;
      Wire.Value 5.25;
      Wire.Value (-0.);
      Wire.Value Float.infinity;
      Wire.Quantile_pos 42;
      Wire.Stats_text "counter server.shed 0\n";
      Wire.Stats_text "";
      Wire.Overload { bound = 4; depth = 4; tier = "minmax" };
      Wire.Bye;
      Wire.Error { code = Wire.Out_of_range; message = "cell 99" };
      Wire.Error { code = Wire.Internal; message = "" };
      Wire.Ship
        { last_seq = 0; complete = true; manifest = ""; body = Wire.Ship_none };
      Wire.Ship
        {
          last_seq = 42;
          complete = false;
          manifest = "n 64\nbudget 8\n";
          body = Wire.Ship_records "ship 0 1 42 0\n1 3 0x1.8p+0 1234abcd\nend 0\n";
        };
      Wire.Ship
        {
          last_seq = 7;
          complete = true;
          manifest = "n 8\n";
          body = Wire.Ship_snapshot "sealed-bytes\x00\x01\x02";
        };
      Wire.Handoff_ack { seq = 99; role = "primary" };
      Wire.Acked { seq = 0 };
      Wire.Acked { seq = 123456789 };
    ]

let test_wire_float_exact () =
  (* IEEE bit patterns survive the wire: the reply carries the exact
     double the server computed, not a printed approximation. *)
  let v = 0.1 +. 0.2 in
  let frame = Wire.encode_reply (Wire.Value v) in
  match
    Wire.decode (Bytes.of_string frame) ~pos:0 ~len:(String.length frame)
  with
  | `Frame (Wire.Rep (Wire.Value v'), _) ->
      checkf "bits preserved" v v';
      check "bit-identical" true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v'))
  | _ -> Alcotest.fail "expected a Value reply"

let test_wire_corruption () =
  let frame = Wire.encode_request (Wire.Point 7) in
  let len = String.length frame in
  (* No flipped byte after the magic is ever accepted as a frame. Most
     flips are an immediate CRC mismatch; a flip in the length field
     may instead read as Incomplete (the frame now claims to be
     longer), which the CRC rejects once more bytes arrive — either
     way, never a decoded frame. *)
  for i = 4 to len - 1 do
    let b = Bytes.of_string frame in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    match Wire.decode b ~pos:0 ~len with
    | `Corrupt _ | `Incomplete -> ()
    | `Frame _ -> Alcotest.fail (Printf.sprintf "byte %d: accepted" i)
  done;
  (* A flip outside the length field specifically is a CRC mismatch. *)
  (let b = Bytes.of_string frame in
   Bytes.set b (len - 6) (Char.chr (Char.code (Bytes.get b (len - 6)) lxor 1));
   match Wire.decode b ~pos:0 ~len with
   | `Corrupt _ -> ()
   | _ -> Alcotest.fail "payload flip not caught by CRC");
  (* Bad magic. *)
  (match Wire.decode (Bytes.of_string "XYZW____") ~pos:0 ~len:8 with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (* Every truncation is Incomplete, never Corrupt. *)
  for k = 0 to len - 1 do
    match Wire.decode (Bytes.of_string frame) ~pos:0 ~len:k with
    | `Incomplete -> ()
    | `Frame _ -> Alcotest.fail (Printf.sprintf "prefix %d: frame" k)
    | `Corrupt r -> Alcotest.fail (Printf.sprintf "prefix %d: corrupt %s" k r)
  done;
  (* Oversized declared payload is rejected before buffering it. *)
  let huge = Bytes.of_string frame in
  Bytes.set_int32_be huge 6 (Int32.of_int (Wire.max_payload + 1));
  (match Wire.decode huge ~pos:0 ~len with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized payload accepted");
  (* Frames decode at any offset. *)
  let shifted = Bytes.of_string ("\x00\x00\x00" ^ frame) in
  match Wire.decode shifted ~pos:3 ~len:(3 + len) with
  | `Frame (Wire.Req (Wire.Point 7), consumed) ->
      checki "offset consumed" (3 + len) consumed
  | _ -> Alcotest.fail "offset decode failed"

let test_wire_batch_constraints () =
  Alcotest.check_raises "nested batch"
    (Invalid_argument "Wire: nested BATCH") (fun () ->
      ignore (Wire.encode_request (Wire.Batch [ Wire.Batch [] ])));
  Alcotest.check_raises "shutdown in batch"
    (Invalid_argument "Wire: SHUTDOWN inside BATCH") (fun () ->
      ignore (Wire.encode_request (Wire.Batch [ Wire.Shutdown ])));
  Alcotest.check_raises "sync in batch"
    (Invalid_argument "Wire: SYNC inside BATCH") (fun () ->
      ignore
        (Wire.encode_request (Wire.Batch [ Wire.Sync { since = 0; max = 1 } ])));
  Alcotest.check_raises "handoff in batch"
    (Invalid_argument "Wire: HANDOFF inside BATCH") (fun () ->
      ignore (Wire.encode_request (Wire.Batch [ Wire.Handoff ])));
  Alcotest.check_raises "ingest in batch"
    (Invalid_argument "Wire: INGEST inside BATCH") (fun () ->
      ignore (Wire.encode_request (Wire.Batch [ Wire.Ingest [ (1, 1.0) ] ])))

(* The storm artifact: a CRC-sealed text form mirroring SHIP batches,
   validated as a unit below the frame layer. *)
let test_wire_storm_codec () =
  let roundtrip deltas =
    match Wire.decode_storm (Wire.encode_storm deltas) with
    | Ok got ->
        check "storm round-trips bit-exactly" true
          (List.for_all2
             (fun (i, d) (i', d') ->
               i = i' && Int64.bits_of_float d = Int64.bits_of_float d')
             deltas got)
    | Error reason -> Alcotest.fail ("storm rejected: " ^ reason)
  in
  roundtrip [];
  roundtrip [ (0, 0.1 +. 0.2) ];
  roundtrip [ (3, 0.5); (7, -0.25); (3, 1.5); (1023, 1e-300) ];
  (* Every single-byte flip anywhere in the artifact — header, delta
     line, trailer — is rejected as a unit. *)
  let sealed = Wire.encode_storm [ (3, 0.5); (7, -0.25) ] in
  for pos = 0 to String.length sealed - 2 do
    let b = Bytes.of_string sealed in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
    match Wire.decode_storm (Bytes.to_string b) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "flipped byte %d accepted" pos)
  done;
  (* A torn artifact (lost trailer) never yields a delta prefix. *)
  match Wire.decode_storm (String.sub sealed 0 (String.length sealed / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "torn storm accepted"

let test_wire_text () =
  let ok line expected =
    match Wire.parse_text_request line with
    | Ok r -> check line true (r = expected)
    | Error reason -> Alcotest.fail (line ^ ": " ^ reason)
  in
  ok "PING" Wire.Ping;
  ok "POINT 3" (Wire.Point 3);
  ok "  RANGE 0 7  " (Wire.Range { lo = 0; hi = 7 });
  ok "QUANTILE 0.5" (Wire.Quantile 0.5);
  ok "STATS" Wire.Stats;
  ok "SHUTDOWN" Wire.Shutdown;
  ok "UPDATE 3 0.5" (Wire.Update { i = 3; delta = 0.5 });
  ok "UPDATE 0 -1.25" (Wire.Update { i = 0; delta = -1.25 });
  List.iter
    (fun line ->
      match Wire.parse_text_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ line))
    [
      "";
      "ping";
      "POINT";
      "POINT x";
      "RANGE 1";
      "QUANTILE a";
      "NOPE 1";
      "UPDATE 3";
      "UPDATE x 0.5";
      "UPDATE 3 x";
      "INGEST 3";
    ];
  checks "pong" "PONG\n" (Wire.render_text_reply Wire.Pong);
  checks "value" "VALUE 5.25\n" (Wire.render_text_reply (Wire.Value 5.25));
  checks "acked" "ACKED seq=42\n" (Wire.render_text_reply (Wire.Acked { seq = 42 }));
  checks "stats end-terminated" "a 1\nEND\n"
    (Wire.render_text_reply (Wire.Stats_text "a 1\n"));
  checks "overload" "OVERLOAD bound=4 depth=4 tier=minmax\n"
    (Wire.render_text_reply
       (Wire.Overload { bound = 4; depth = 4; tier = "minmax" }))

(* --- admission control --- *)

let test_admit_bound_and_drain () =
  let a = Admit.create ~bound:2 () in
  check "offer 1" true (Admit.offer a 1);
  check "offer 2" true (Admit.offer a 2);
  check "offer 3 shed" false (Admit.offer a 3);
  checki "depth" 2 (Admit.depth a);
  checki "shed" 1 (Admit.shed_total a);
  check "fifo" true (Admit.take_batch a = [ 1; 2 ]);
  checki "drained" 0 (Admit.depth a);
  check "offer after drain" true (Admit.offer a 4);
  checki "admitted total" 3 (Admit.admitted_total a);
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Admit.create: bound must be at least 1") (fun () ->
      ignore (Admit.create ~bound:0 () : int Admit.t))

let test_admit_pressure_trajectory () =
  let a = Admit.create ~bound:1 () in
  checki "starts calm" 0 (Admit.pressure a);
  (* Shedding rounds climb one level each, capped at 2. *)
  check "0->1" true (Admit.note_round a ~shed:1);
  checki "level 1" 1 (Admit.pressure a);
  check "1->2" true (Admit.note_round a ~shed:3);
  checki "level 2" 2 (Admit.pressure a);
  check "capped" false (Admit.note_round a ~shed:1);
  checki "still 2" 2 (Admit.pressure a);
  (* Eight consecutive quiet rounds relax one level. *)
  for k = 1 to 7 do
    check (Printf.sprintf "quiet %d" k) false (Admit.note_round a ~shed:0)
  done;
  check "2->1 on the eighth" true (Admit.note_round a ~shed:0);
  checki "level 1 again" 1 (Admit.pressure a);
  (* A shed in the middle restarts the quiet run. *)
  for _ = 1 to 7 do ignore (Admit.note_round a ~shed:0) done;
  check "shed restarts the count" true (Admit.note_round a ~shed:1);
  checki "back to 2" 2 (Admit.pressure a);
  for _ = 1 to 7 do ignore (Admit.note_round a ~shed:0) done;
  check "needs a full fresh run" true (Admit.note_round a ~shed:0);
  checki "level 1 once more" 1 (Admit.pressure a);
  (* Level to ladder top. *)
  check "top 0" true (Admit.top_of_pressure 0 = `Minmax);
  check "top 1" true (Admit.top_of_pressure 1 = `Approx);
  check "top 2" true (Admit.top_of_pressure 2 = `Greedy)

(* --- end-to-end over a live socket --- *)

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "%s/wavesyn-test-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !counter

let test_data n =
  let rng = Prng.create ~seed:5 in
  Array.init n (fun _ -> Prng.float rng 50.)

(* Start a server in its own domain, run [f client], always shut the
   server down and join. *)
let with_server ?(queue_bound = 64) ?obs ~n f =
  let path = sock_path () in
  let data = test_data n in
  let cfg = Server.config ~budget:8 ~queue_bound ~path data in
  let server = Server.create ?obs cfg in
  let runner = Domain.spawn (fun () -> Server.run server) in
  let finish () =
    (match Client.connect ~wait_ms:5000. path with
    | Ok c ->
        ignore (Client.request_one c Wire.Shutdown);
        Client.close c
    | Error _ -> ());
    match Domain.join runner with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("server run: " ^ Validate.to_string e)
  in
  match
    let client =
      match Client.connect ~wait_ms:5000. path with
      | Ok c -> c
      | Error e -> failwith (Validate.to_string e)
    in
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    f ~data client
  with
  | result ->
      finish ();
      (result, Server.stats server)
  | exception e ->
      finish ();
      raise e

let expect_one client req =
  match Client.request_one client req with
  | Ok reply -> reply
  | Error e -> Alcotest.fail (Validate.to_string e)

let test_end_to_end () =
  let (), stats =
    with_server ~n:32 @@ fun ~data client ->
    check "ping" true (expect_one client Wire.Ping = Wire.Pong);
    (* Replies match direct evaluation of the same synopsis; with
       budget 8 < 32 cells the values are approximations of [data],
       so compare against the synopsis, not the raw data. *)
    (match expect_one client (Wire.Range { lo = 0; hi = 31 }) with
    | Wire.Value v -> check "range finite" true (Float.is_finite v)
    | r -> Alcotest.fail ("range: " ^ Wire.describe_reply r));
    (match expect_one client (Wire.Point 3) with
    | Wire.Value v -> check "point finite" true (Float.is_finite v)
    | r -> Alcotest.fail ("point: " ^ Wire.describe_reply r));
    (match expect_one client (Wire.Quantile 0.5) with
    | Wire.Quantile_pos p ->
        check "quantile in domain" true (p >= 0 && p < Array.length data)
    | r -> Alcotest.fail ("quantile: " ^ Wire.describe_reply r));
    (* Structured errors, connection intact afterwards. *)
    (match expect_one client (Wire.Point 99) with
    | Wire.Error { code = Wire.Out_of_range; _ } -> ()
    | r -> Alcotest.fail ("bad point: " ^ Wire.describe_reply r));
    (match expect_one client (Wire.Range { lo = 5; hi = 2 }) with
    | Wire.Error { code = Wire.Out_of_range; _ } -> ()
    | r -> Alcotest.fail ("bad range: " ^ Wire.describe_reply r));
    (match expect_one client (Wire.Quantile 1.5) with
    | Wire.Error { code = Wire.Out_of_range; _ } -> ()
    | r -> Alcotest.fail ("bad quantile: " ^ Wire.describe_reply r));
    (* Still alive. *)
    check "ping after errors" true (expect_one client Wire.Ping = Wire.Pong);
    (* The metrics table comes back over the wire. *)
    match expect_one client Wire.Stats with
    | Wire.Stats_text body ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        check "stats mentions server.requests" true
          (contains body "server.requests")
    | r -> Alcotest.fail ("stats: " ^ Wire.describe_reply r)
  in
  check "no shedding" true (stats.Server.shed = 0);
  check "tier stays top" true (stats.Server.tier = "minmax");
  (* The query connection plus the shutdown helper's. *)
  checki "connections" 2 stats.Server.accepted

let test_batch_and_overload () =
  let (), stats =
    with_server ~n:32 ~queue_bound:3 @@ fun ~data:_ client ->
    let reqs = List.init 6 (fun i -> Wire.Point i) in
    match Client.request client (Wire.Batch reqs) with
    | Error e -> Alcotest.fail (Validate.to_string e)
    | Ok replies ->
        checki "one reply per entry" 6 (List.length replies);
        let values, overloads =
          List.partition
            (function Wire.Value _ -> true | _ -> false)
            replies
        in
        checki "first three answered" 3 (List.length values);
        checki "rest shed" 3 (List.length overloads);
        List.iter
          (function
            | Wire.Overload { bound; depth; tier } ->
                checki "bound" 3 bound;
                checki "depth at bound" 3 depth;
                checks "tier named" "minmax" tier
            | r -> Alcotest.fail ("expected overload: " ^ Wire.describe_reply r))
          overloads;
        (* The connection survived the burst. *)
        check "ping after burst" true (expect_one client Wire.Ping = Wire.Pong)
  in
  checki "shed count" 3 stats.Server.shed;
  check "pressure stepped the ladder down" true
    (stats.Server.recuts >= 2 (* initial cut + pressure recut *))

let test_jobs_determinism () =
  (* The same seeded schedule against two servers — pool of 1 and pool
     of 3 domains — must produce byte-identical transcripts. *)
  let transcript domains =
    let path = sock_path () in
    let data = test_data 64 in
    let pool = Wavesyn_par.Pool.create ~domains () in
    Fun.protect ~finally:(fun () -> Wavesyn_par.Pool.shutdown pool)
    @@ fun () ->
    let cfg = Server.config ~budget:8 ~queue_bound:4 ~path data in
    let server = Server.create ~pool cfg in
    let runner = Domain.spawn (fun () -> Server.run server) in
    let buf = Buffer.create 4096 in
    let client =
      match Client.connect ~wait_ms:5000. path with
      | Ok c -> c
      | Error e -> failwith (Validate.to_string e)
    in
    let summary =
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      let result =
        Loadgen.run ~rpc:(Client.request client) ~seed:11 ~requests:40 ~batch:8
          ~n:64
          ~mix:Loadgen.default_mix ~out:(Buffer.add_string buf) ()
      in
      ignore (Client.request_one client Wire.Shutdown);
      match result with
      | Ok s -> s
      | Error e -> failwith (Validate.to_string e)
    in
    (match Domain.join runner with
    | Ok () -> ()
    | Error e -> failwith (Validate.to_string e));
    (Buffer.contents buf, summary)
  in
  let t1, s1 = transcript 1 in
  let t3, s3 = transcript 3 in
  check "transcripts byte-identical" true (String.equal t1 t3);
  checks "crc identical" s1.Loadgen.transcript_crc s3.Loadgen.transcript_crc;
  checki "same shed count" s1.Loadgen.overloads s3.Loadgen.overloads;
  check "the schedule actually overloads" true (s1.Loadgen.overloads > 0);
  checki "all requests answered" 40 s1.Loadgen.replies

let test_client_connect_error () =
  match Client.connect (sock_path ()) with
  | Error (Validate.Io_error _) -> ()
  | Error e -> Alcotest.fail ("unexpected error: " ^ Validate.to_string e)
  | Ok _ -> Alcotest.fail "connected to a nonexistent socket"

(* --- loadgen mix parsing --- *)

let test_mix_of_string () =
  (match Loadgen.mix_of_string "point=4,range=3,quantile=2,ping=1" with
  | Ok m -> check "full spec" true (m = Loadgen.default_mix)
  | Error reason -> Alcotest.fail reason);
  (match Loadgen.mix_of_string "point=1" with
  | Ok m ->
      check "omitted kinds are zero" true
        (m
        = {
            Loadgen.point = 1;
            range = 0;
            quantile = 0;
            ping = 0;
            update = 0;
            selectivity = 0;
          })
  | Error reason -> Alcotest.fail reason);
  List.iter
    (fun s ->
      match Loadgen.mix_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ s))
    [ ""; "point"; "point=x"; "point=-1"; "nope=3"; "point=0,range=0" ];
  (match Loadgen.mix_of_string "point=2,update=3" with
  | Ok m ->
      check "update weight parses" true
        (m
        = {
            Loadgen.point = 2;
            range = 0;
            quantile = 0;
            ping = 0;
            update = 3;
            selectivity = 0;
          })
  | Error reason -> Alcotest.fail reason)

(* run_multi with a single connection draws exactly the schedule run
   always drew: the historical single-connection transcript (and its
   pinned CRCs) is the nconns=1 special case, not a near miss. *)
let test_run_multi_single_equals_run () =
  (* A pure in-process echo rpc keeps this a schedule test — no
     server, no socket, fully deterministic. *)
  let echo req =
    let reply_of = function
      | Wire.Point _ -> Wire.Value 1.5
      | Wire.Range _ -> Wire.Value 2.5
      | Wire.Quantile _ -> Wire.Quantile_pos 3
      | Wire.Ping -> Wire.Pong
      | Wire.Update _ -> Wire.Acked { seq = 9 }
      | _ -> Wire.Error { code = Wire.Internal; message = "unexpected" }
    in
    match req with
    | Wire.Batch rs -> Ok (List.map reply_of rs)
    | r -> Ok [ reply_of r ]
  in
  let mix = { Loadgen.default_mix with update = 2 } in
  let buf_a = Buffer.create 1024 and buf_b = Buffer.create 1024 in
  let run_summary =
    match
      Loadgen.run ~rpc:echo ~seed:23 ~requests:30 ~batch:4 ~n:64 ~mix
        ~out:(Buffer.add_string buf_a) ()
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  let multi_summary =
    match
      Loadgen.run_multi ~rpcs:[| echo |] ~seed:23 ~requests:30 ~batch:4 ~n:64
        ~mix ~out:(Buffer.add_string buf_b) ()
    with
    | Ok m -> m
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  checks "one-connection run_multi = run, byte for byte"
    (Buffer.contents buf_a) (Buffer.contents buf_b);
  checks "total CRC equal" run_summary.Loadgen.transcript_crc
    multi_summary.Loadgen.totals.Loadgen.transcript_crc;
  checki "one connection fingerprinted" 1
    (Array.length multi_summary.Loadgen.connection_crcs);
  checks "the sole connection's CRC is the whole transcript's"
    run_summary.Loadgen.transcript_crc
    multi_summary.Loadgen.connection_crcs.(0);
  (* Multi-connection runs are reproducible, and the per-connection
     subsequences cover the whole transcript. *)
  let multi () =
    let buf = Buffer.create 1024 in
    match
      Loadgen.run_multi
        ~rpcs:[| echo; echo; echo |]
        ~seed:23 ~requests:30 ~batch:4 ~n:64 ~mix
        ~out:(Buffer.add_string buf) ()
    with
    | Ok m -> (Buffer.contents buf, m)
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  let ta, ma = multi () in
  let tb, mb = multi () in
  checks "three-connection interleave reproducible" ta tb;
  check "per-connection CRCs reproducible" true
    (ma.Loadgen.connection_crcs = mb.Loadgen.connection_crcs);
  check "the interleave differs from the single-connection schedule" true
    (ta <> Buffer.contents buf_a)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "float exactness" `Quick test_wire_float_exact;
          Alcotest.test_case "corruption and truncation" `Quick
            test_wire_corruption;
          Alcotest.test_case "batch constraints" `Quick
            test_wire_batch_constraints;
          Alcotest.test_case "storm artifact codec" `Quick test_wire_storm_codec;
          Alcotest.test_case "text mode" `Quick test_wire_text;
        ] );
      ( "admit",
        [
          Alcotest.test_case "bound and drain" `Quick
            test_admit_bound_and_drain;
          Alcotest.test_case "pressure trajectory" `Quick
            test_admit_pressure_trajectory;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "query kinds and errors" `Quick test_end_to_end;
          Alcotest.test_case "batch overload shedding" `Quick
            test_batch_and_overload;
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "connect error" `Quick test_client_connect_error;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "mix parsing" `Quick test_mix_of_string;
          Alcotest.test_case "multi-connection schedule" `Quick
            test_run_multi_single_equals_run;
        ] );
    ]
