(* Resilient serving layer: validated ingestion, cooperative deadlines,
   the graceful-degradation ladder, and deterministic chaos tests.

   The contract under test: once input validates, the ladder serves
   every request without exceptions, whatever tier answers reports a
   guarantee re-measured on the pristine data, and injected faults
   degrade the answer instead of crashing the caller. *)

module Validate = Wavesyn_robust.Validate
module Deadline = Wavesyn_robust.Deadline
module Fault = Wavesyn_robust.Fault
module Ladder = Wavesyn_robust.Ladder
module Retry = Wavesyn_robust.Retry
module Snapshot = Wavesyn_robust.Snapshot
module Journal = Wavesyn_robust.Journal
module Incremental = Wavesyn_robust.Incremental
module Stream_synopsis = Wavesyn_stream.Stream_synopsis
module Minmax_dp = Wavesyn_core.Minmax_dp
module Approx_additive = Wavesyn_core.Approx_additive
module Greedy_maxerr = Wavesyn_baselines.Greedy_maxerr
module Synopsis = Wavesyn_synopsis.Synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Engine = Wavesyn_aqp.Engine
module Relation = Wavesyn_aqp.Relation
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- Validate --- *)

let test_parse_float () =
  (match Validate.parse_float ~line:1 "3.5" with
  | Ok v -> Alcotest.(check (float 0.)) "parses" 3.5 v
  | Error _ -> Alcotest.fail "3.5 must parse");
  (match Validate.parse_float ~path:"d.txt" ~line:7 "abc" with
  | Error (Validate.Bad_value { path = Some "d.txt"; line = 7; token = "abc"; _ })
    ->
      ()
  | _ -> Alcotest.fail "malformed token must carry file and line");
  List.iter
    (fun tok ->
      match Validate.parse_float ~line:1 tok with
      | Error (Validate.Bad_value _) -> ()
      | _ -> Alcotest.fail (tok ^ " must be rejected"))
    [ "nan"; "inf"; "-inf"; "infinity"; "x"; "" ]

let test_read_file () =
  let write lines =
    let path = Filename.temp_file "wavesyn_robust" ".txt" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  (match Validate.read_file (write [ "1"; ""; "2.5"; "-3" ]) with
  | Ok a -> check "blank lines skipped" true (a = [| 1.; 2.5; -3. |])
  | Error e -> Alcotest.fail (Validate.to_string e));
  (match Validate.read_file (write [ "1"; "2"; "oops"; "4" ]) with
  | Error (Validate.Bad_value { line = 3; token = "oops"; _ }) -> ()
  | _ -> Alcotest.fail "bad token must be reported with its line");
  (match Validate.read_file (write []) with
  | Error (Validate.Bad_shape _ as e) ->
      checki "empty file exit code" 65 (Validate.exit_code e)
  | _ -> Alcotest.fail "empty file must be Bad_shape");
  match Validate.read_file "/nonexistent/wavesyn.txt" with
  | Error (Validate.Io_error _ as e) ->
      checki "io exit code" 66 (Validate.exit_code e)
  | _ -> Alcotest.fail "unreadable path must be Io_error"

let test_data_checks () =
  (match Validate.data [||] with
  | Error (Validate.Bad_shape _) -> ()
  | _ -> Alcotest.fail "empty data rejected");
  (match Validate.data [| 1.; Float.nan; 3.; 4. |] with
  | Error (Validate.Bad_value { line = 2; _ }) -> ()
  | _ -> Alcotest.fail "NaN position reported");
  (match Validate.data ~require_pow2:true [| 1.; 2.; 3. |] with
  | Error (Validate.Bad_shape _) -> ()
  | _ -> Alcotest.fail "non-pow2 rejected when required");
  (match Validate.budget (-1) with
  | Error (Validate.Bad_budget _ as e) ->
      checki "budget exit code" 65 (Validate.exit_code e)
  | _ -> Alcotest.fail "negative budget rejected");
  (match Validate.epsilon 0. with
  | Error (Validate.Bad_epsilon _) -> ()
  | _ -> Alcotest.fail "epsilon 0 rejected");
  (match Validate.epsilon 1.5 with
  | Error (Validate.Bad_epsilon _) -> ()
  | _ -> Alcotest.fail "epsilon 1.5 rejected");
  checki "usage exit code" 2
    (Validate.exit_code
       (Validate.Bad_option { what = "--x"; reason = "conflict" }))

(* Bounded reads: the caps must trip as structured errors before the
   offending bytes are retained. *)
let test_read_file_caps () =
  let write s =
    let path = Filename.temp_file "wavesyn_caps" ".txt" in
    let oc = open_out path in
    output_string oc s;
    close_out oc;
    path
  in
  (match Validate.read_file (write (String.make 5000 '7' ^ "\n1\n")) with
  | Error (Validate.Bad_value { line = 1; token; _ } as e) ->
      checki "long line exit code" 65 (Validate.exit_code e);
      check "token truncated for the message" true
        (String.length token <= 36
        && String.sub token (String.length token - 3) 3 = "...")
  | _ -> Alcotest.fail "a 5000-byte line must be rejected");
  (match
     Validate.read_file ~max_line_bytes:8 (write "12345\n123456789\n")
   with
  | Error (Validate.Bad_value { line = 2; _ }) -> ()
  | _ -> Alcotest.fail "custom line cap must trip on line 2");
  (match Validate.read_file ~max_bytes:10 (write "1\n2\n3\n4\n5\n6\n7\n") with
  | Error (Validate.Bad_shape _ as e) ->
      checki "oversized file exit code" 65 (Validate.exit_code e)
  | _ -> Alcotest.fail "a file over max_bytes must be Bad_shape");
  match Validate.read_file ~max_values:3 (write "1\n2\n3\n4\n") with
  | Error (Validate.Bad_shape _) -> ()
  | _ -> Alcotest.fail "more than max_values values must be Bad_shape"

let test_read_updates () =
  let write s =
    let path = Filename.temp_file "wavesyn_upd" ".txt" in
    let oc = open_out path in
    output_string oc s;
    close_out oc;
    path
  in
  (match Validate.read_updates (write "3 1.5\n\n0 -2\n7   0x1p-1\n") with
  | Ok a ->
      check "updates parsed, blanks skipped" true
        (a = [| (3, 1.5); (0, -2.); (7, 0.5) |])
  | Error e -> Alcotest.fail (Validate.to_string e));
  (match Validate.read_updates (write "3 1.5\nx 2\n") with
  | Error (Validate.Bad_value { line = 2; _ }) -> ()
  | _ -> Alcotest.fail "non-integer cell must be Bad_value");
  (match Validate.read_updates (write "-1 2\n") with
  | Error (Validate.Bad_value _) -> ()
  | _ -> Alcotest.fail "negative cell must be Bad_value");
  (match Validate.read_updates (write "1 nan\n") with
  | Error (Validate.Bad_value _) -> ()
  | _ -> Alcotest.fail "NaN delta must be Bad_value");
  match Validate.read_updates (write "1 2 3\n") with
  | Error (Validate.Bad_value { line = 1; _ }) -> ()
  | _ -> Alcotest.fail "three tokens must be Bad_value"

(* Line-ending tolerance: CRLF terminators and a newline-less final
   line are data, not token errors (regression: a '\r' used to count
   against max_line_bytes, so an exactly-cap-length CRLF line was
   rejected where its LF twin passed). *)
let test_read_line_endings () =
  let write s =
    let path = Filename.temp_file "wavesyn_eol" ".txt" in
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc;
    path
  in
  (match Validate.read_file (write "1.5\r\n\r\n-2\r\n3") with
  | Ok a ->
      check "CRLF + newline-less final line parse" true
        (a = [| 1.5; -2.; 3. |])
  | Error e -> Alcotest.fail (Validate.to_string e));
  (match Validate.read_file ~max_line_bytes:5 (write "12345\r\n1\r\n") with
  | Ok a -> check "CR does not count against the line cap" true (a = [| 12345.; 1. |])
  | Error e -> Alcotest.fail (Validate.to_string e));
  (match Validate.read_file ~max_line_bytes:5 (write "123456\r\n") with
  | Error (Validate.Bad_value { line = 1; _ }) -> ()
  | _ -> Alcotest.fail "the cap must still trip on the payload bytes");
  (match Validate.read_file (write "1\r2\n") with
  | Error (Validate.Bad_value { line = 1; _ }) -> ()
  | _ -> Alcotest.fail "a lone interior CR is not a line break");
  (match Validate.read_updates (write "3 1.5\r\n0 -2") with
  | Ok a ->
      check "updates accept CRLF and a newline-less tail" true
        (a = [| (3, 1.5); (0, -2.) |])
  | Error e -> Alcotest.fail (Validate.to_string e));
  match Validate.read_file (write "7\r") with
  | Ok a -> check "trailing CR at EOF is trimmed" true (a = [| 7. |])
  | Error e -> Alcotest.fail (Validate.to_string e)

(* --- Retry --- *)

let test_retry_backoff_deterministic () =
  let delays p = List.init 12 (fun k -> Retry.delay_ms p ~attempt:(k + 1)) in
  let d1 = delays (Retry.policy ~seed:5 ()) in
  let d2 = delays (Retry.policy ~seed:5 ()) in
  check "same seed replays the same jittered sequence" true (d1 = d2);
  check "different seed draws differently" true
    (delays (Retry.policy ~seed:6 ()) <> d1);
  List.iteri
    (fun k d ->
      let raw = Float.min 1000. (2. ** float_of_int k) in
      check
        (Printf.sprintf "attempt %d within the jitter band" (k + 1))
        true
        (d >= (0.75 *. raw) -. 1e-9 && d <= (1.25 *. raw) +. 1e-9))
    d1

let test_with_retries () =
  let p = Retry.policy ~seed:1 () in
  let calls = ref 0 and slept = ref 0 in
  (match
     Retry.with_retries
       ~sleep:(fun _ -> incr slept)
       p ~attempts:5
       (fun () ->
         incr calls;
         if !calls < 3 then Error "flaky" else Ok !calls)
   with
  | Ok 3 -> ()
  | _ -> Alcotest.fail "must succeed on the third call");
  checki "one backoff per failure" 2 !slept;
  calls := 0;
  match
    Retry.with_retries p ~attempts:4 (fun () ->
        incr calls;
        Error "down")
  with
  | Error "down" -> checki "all attempts consumed" 4 !calls
  | _ -> Alcotest.fail "exhausted retries must return the last error"

let test_breaker_lifecycle () =
  let now = ref 0. in
  let b =
    Retry.Breaker.create ~threshold:2 ~cooldown_ms:100.
      ~clock:(fun () -> !now)
      ()
  in
  let fail () = Retry.Breaker.call b (fun () -> Error "boom") in
  let succeed () = Retry.Breaker.call b (fun () -> Ok ()) in
  check "starts closed" true (Retry.Breaker.state b = Retry.Breaker.Closed);
  ignore (fail ());
  check "below threshold stays closed" true
    (Retry.Breaker.state b = Retry.Breaker.Closed);
  ignore (fail ());
  check "threshold of consecutive failures trips open" true
    (Retry.Breaker.state b = Retry.Breaker.Open);
  (match fail () with
  | Error Retry.Breaker.Open_circuit -> ()
  | _ -> Alcotest.fail "open breaker must reject without running");
  checki "rejection counted" 1 (Retry.Breaker.rejected b);
  now := 150.;
  check "cooldown elapses to half-open" true
    (Retry.Breaker.state b = Retry.Breaker.Half_open);
  (match succeed () with
  | Ok () -> ()
  | _ -> Alcotest.fail "half-open probe must be let through");
  check "probe success recloses" true
    (Retry.Breaker.state b = Retry.Breaker.Closed);
  ignore (fail ());
  ignore (fail ());
  now := 300.;
  (match fail () with
  | Error (Retry.Breaker.Inner "boom") -> ()
  | _ -> Alcotest.fail "half-open probe failure reports the inner error");
  check "probe failure reopens" true
    (Retry.Breaker.state b = Retry.Breaker.Open);
  checki "every opening counted" 3 (Retry.Breaker.trips b);
  check "a success also interrupts the failure streak" true
    (let b2 =
       Retry.Breaker.create ~threshold:2 ~clock:(fun () -> 0.) ()
     in
     ignore (Retry.Breaker.call b2 (fun () -> Error "x"));
     ignore (Retry.Breaker.call b2 (fun () -> Ok ()));
     ignore (Retry.Breaker.call b2 (fun () -> Error "x"));
     Retry.Breaker.state b2 = Retry.Breaker.Closed)

(* --- Snapshot and Journal (store units; end-to-end in test_chaos) --- *)

let temp_store =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wavesyn_robust_store_%d_%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir dir 0o755;
    dir

let sample_stream ~n ~updates ~seed =
  let rng = Prng.create ~seed in
  let s = Stream_synopsis.create ~n in
  for _ = 1 to updates do
    Stream_synopsis.update s ~i:(Prng.int rng n)
      ~delta:(float_of_int (Prng.int rng 19 - 9))
  done;
  s

let flip_byte path pos =
  let ic = open_in_bin path in
  let bytes = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let test_snapshot_roundtrip () =
  let dir = temp_store () in
  let stream = sample_stream ~n:32 ~updates:25 ~seed:3 in
  let state = Snapshot.of_stream ~seq:25 stream in
  (match Snapshot.write ~sync:false ~dir state with
  | Ok 1 -> ()
  | Ok g -> Alcotest.fail (Printf.sprintf "first generation must be 1, got %d" g)
  | Error e -> Alcotest.fail (Validate.to_string e));
  match Snapshot.read_latest ~dir with
  | Error e -> Alcotest.fail (Validate.to_string e)
  | Ok r ->
      check "latest generation found" true (r.Snapshot.generation = Some 1);
      check "nothing corrupt" true (r.Snapshot.corrupt = []);
      (match r.Snapshot.state with
      | None -> Alcotest.fail "state must decode"
      | Some got ->
          checks "state round-trips bit-exactly" (Snapshot.encode state)
            (Snapshot.encode got);
          checks "stream rebuilt from it is identical"
            (Snapshot.encode state)
            (Snapshot.encode
               (Snapshot.of_stream ~seq:25 (Snapshot.to_stream got))))

let test_snapshot_corrupt_falls_back () =
  let dir = temp_store () in
  let stream = sample_stream ~n:16 ~updates:10 ~seed:4 in
  let write seq =
    match Snapshot.write ~sync:false ~dir (Snapshot.of_stream ~seq stream) with
    | Ok g -> g
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  checki "gen 1" 1 (write 10);
  checki "gen 2" 2 (write 11);
  checki "gen 3" 3 (write 12);
  flip_byte (Snapshot.file_of_generation dir 3) 0;
  (match Snapshot.read_latest ~dir with
  | Ok { Snapshot.generation = Some 2; corrupt = [ 3 ]; state = Some st } ->
      checki "fell back to generation 2's seq" 11 st.Snapshot.seq
  | Ok _ -> Alcotest.fail "must fall back to generation 2 reporting 3 corrupt"
  | Error e -> Alcotest.fail (Validate.to_string e));
  flip_byte (Snapshot.file_of_generation dir 2) 40;
  (match Snapshot.read_latest ~dir with
  | Ok { Snapshot.generation = Some 1; corrupt = [ 3; 2 ]; _ } -> ()
  | Ok _ -> Alcotest.fail "must fall back past both corrupt generations"
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* Torn on-disk bytes (a strict prefix) are rejected the same way. *)
  (match Snapshot.decode (String.concat "\n" [ "wavesyn-snapshot v1"; "seq 1" ]) with
  | Error (Validate.Bad_shape _) -> ()
  | _ -> Alcotest.fail "a truncated snapshot must be Bad_shape");
  match Snapshot.decode "" with
  | Error (Validate.Bad_shape _) -> ()
  | _ -> Alcotest.fail "empty bytes must be Bad_shape"

let test_snapshot_prunes_generations () =
  let dir = temp_store () in
  let stream = sample_stream ~n:8 ~updates:5 ~seed:5 in
  for seq = 1 to 5 do
    match
      Snapshot.write ~keep:2 ~sync:false ~dir (Snapshot.of_stream ~seq stream)
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Validate.to_string e)
  done;
  match Snapshot.list ~dir with
  | Ok [ 5; 4 ] -> ()
  | Ok gens ->
      Alcotest.fail
        ("kept generations must be [5; 4], got ["
        ^ String.concat ";" (List.map string_of_int gens)
        ^ "]")
  | Error e -> Alcotest.fail (Validate.to_string e)

let test_journal_roundtrip () =
  let dir = temp_store () in
  let w =
    match Journal.open_writer ~sync:false ~dir ~next_seq:1 () with
    | Ok w -> w
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  List.iteri
    (fun k (i, delta) ->
      match Journal.append w ~i ~delta with
      | Ok seq -> checki "sequence is consecutive" (k + 1) seq
      | Error e -> Alcotest.fail (Validate.to_string e))
    [ (3, 1.5); (0, -2.25); (7, 0.125); (3, 4.) ];
  Journal.close w;
  (match Journal.replay ~dir () with
  | Ok { Journal.records; truncated = false; _ } ->
      check "records round-trip bit-exactly" true
        (List.map (fun r -> (r.Journal.seq, r.Journal.i, r.Journal.delta)) records
        = [ (1, 3, 1.5); (2, 0, -2.25); (3, 7, 0.125); (4, 3, 4.) ])
  | Ok _ -> Alcotest.fail "a clean journal must not be truncated"
  | Error e -> Alcotest.fail (Validate.to_string e));
  match Journal.replay ~since:2 ~dir () with
  | Ok { Journal.records; _ } ->
      check "since filters to the suffix" true
        (List.map (fun r -> r.Journal.seq) records = [ 3; 4 ])
  | Error e -> Alcotest.fail (Validate.to_string e)

let test_journal_truncates_at_corruption () =
  let dir = temp_store () in
  let w =
    match Journal.open_writer ~sync:false ~dir ~next_seq:1 () with
    | Ok w -> w
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  for i = 1 to 6 do
    ignore (Journal.append w ~i ~delta:1.)
  done;
  Journal.close w;
  let path = Journal.path ~dir in
  (* Flip one bit inside record 4: everything from there is untrusted,
     even though records 5 and 6 are intact. *)
  let ic = open_in_bin path in
  let lines = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let offset_of_line k =
    let pos = ref 0 in
    for _ = 1 to k do
      pos := String.index_from lines !pos '\n' + 1
    done;
    !pos
  in
  flip_byte path (offset_of_line 3);
  (match Journal.replay ~dir () with
  | Ok { Journal.records; truncated = true; _ } ->
      check "only the prefix before the corruption survives" true
        (List.map (fun r -> r.Journal.seq) records = [ 1; 2; 3 ])
  | Ok _ -> Alcotest.fail "corruption must truncate the replay"
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* Repair drops the untrusted tail so appends can resume cleanly. *)
  (match Journal.repair ~dir with
  | Ok { Journal.truncated = true; valid_bytes; _ } ->
      checki "file cut back to the valid prefix" valid_bytes
        (let ic = open_in_bin path in
         let len = in_channel_length ic in
         close_in ic;
         len)
  | Ok _ -> Alcotest.fail "repair must report the truncation"
  | Error e -> Alcotest.fail (Validate.to_string e));
  let w =
    match Journal.open_writer ~sync:false ~dir ~next_seq:4 () with
    | Ok w -> w
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  ignore (Journal.append w ~i:9 ~delta:2.);
  Journal.close w;
  match Journal.replay ~dir () with
  | Ok { Journal.records; truncated = false; _ } ->
      check "resumed journal replays in full" true
        (List.map (fun r -> (r.Journal.seq, r.Journal.i)) records
        = [ (1, 1); (2, 2); (3, 3); (4, 9) ])
  | Ok _ -> Alcotest.fail "repaired journal must replay cleanly"
  | Error e -> Alcotest.fail (Validate.to_string e)

let test_journal_torn_tail_and_rotation () =
  let dir = temp_store () in
  let w =
    match Journal.open_writer ~sync:false ~dir ~next_seq:1 () with
    | Ok w -> w
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  for i = 1 to 5 do
    ignore (Journal.append w ~i ~delta:0.5)
  done;
  (match Journal.rotate w ~keep_after:3 with
  | Ok 2 -> ()
  | Ok k -> Alcotest.fail (Printf.sprintf "rotation must keep 2 records, kept %d" k)
  | Error e -> Alcotest.fail (Validate.to_string e));
  ignore (Journal.append w ~i:6 ~delta:0.5);
  Journal.close w;
  (match Journal.replay ~dir () with
  | Ok { Journal.records; truncated = false; _ } ->
      check "rotation preserves the suffix and numbering" true
        (List.map (fun r -> r.Journal.seq) records = [ 4; 5; 6 ])
  | Ok _ | Error _ -> Alcotest.fail "rotated journal must replay cleanly");
  (* A torn tail: the last line lacks its newline, so it was never
     acknowledged and must not count. *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Journal.path ~dir)
  in
  output_string oc "7 1 0x1p+0 0123";
  close_out oc;
  match Journal.replay ~dir () with
  | Ok { Journal.records; truncated = true; _ } ->
      check "torn tail dropped" true
        (List.map (fun r -> r.Journal.seq) records = [ 4; 5; 6 ])
  | Ok _ -> Alcotest.fail "a torn tail must truncate the replay"
  | Error e -> Alcotest.fail (Validate.to_string e)

(* --- Journal shipping (replication cursors) --- *)

let seqs_of records = List.map (fun r -> r.Journal.seq) records

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let write_records dir ~from ~upto =
  let w =
    match Journal.open_writer ~sync:false ~dir ~next_seq:from () with
    | Ok w -> w
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  for i = from to upto do
    ignore (Journal.append w ~i ~delta:(float_of_int i *. 0.25))
  done;
  w

let test_journal_ship_cursor () =
  let dir = temp_store () in
  Journal.close (write_records dir ~from:1 ~upto:10);
  (* a max-bounded batch ships a prefix and says it stopped short *)
  (match Journal.ship ~dir ~since:0 ~seq:10 ~max:4 () with
  | Ok b ->
      check "first four records" true (seqs_of b.Journal.b_records = [ 1; 2; 3; 4 ]);
      checki "batch carries the authoritative seq" 10 b.Journal.b_last_seq;
      check "prefix batch is incomplete" false b.Journal.b_complete
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* the cursor resumes mid-journal and drains to completion *)
  (match Journal.ship ~dir ~since:4 ~seq:10 ~max:100 () with
  | Ok b ->
      check "suffix from the cursor" true
        (seqs_of b.Journal.b_records = [ 5; 6; 7; 8; 9; 10 ]);
      check "drained batch is complete" true b.Journal.b_complete;
      (* the batch artifact survives an encode/decode roundtrip exactly *)
      (match Journal.decode_batch (Journal.encode_batch b) with
      | Ok b' -> check "batch round-trips bit-exactly" true (b = b')
      | Error e -> Alcotest.fail (Validate.to_string e))
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* a current cursor gets an empty complete batch, not an error *)
  (match Journal.ship ~dir ~since:10 ~seq:10 ~max:8 () with
  | Ok { Journal.b_records = []; b_complete = true; b_last_seq = 10; _ } -> ()
  | Ok _ -> Alcotest.fail "current cursor must ship an empty complete batch"
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* a cursor ahead of the store is split brain, never silently served *)
  match Journal.ship ~dir ~since:11 ~seq:10 ~max:8 () with
  | Error (Validate.Bad_shape { reason; _ }) ->
      check "split brain named" true (contains reason "ahead of")
  | Ok _ | Error _ -> Alcotest.fail "cursor ahead of the store must be refused"

let test_journal_ship_rejects_bit_flip () =
  let dir = temp_store () in
  Journal.close (write_records dir ~from:1 ~upto:6);
  let encoded =
    match Journal.ship ~dir ~since:0 ~seq:6 ~max:6 () with
    | Ok b -> Journal.encode_batch b
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  (* any single bit flip — header, record body, trailer — must trip a
     CRC or shape check; a shipped batch is never trusted on faith *)
  let len = String.length encoded in
  List.iter
    (fun pos ->
      let b = Bytes.of_string encoded in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
      match Journal.decode_batch (Bytes.to_string b) with
      | Error (Validate.Bad_shape _) -> ()
      | Ok _ ->
          Alcotest.fail
            (Printf.sprintf "flipped byte %d must not decode" pos)
      | Error e -> Alcotest.fail (Validate.to_string e))
    [ 0; 5; len / 2; len - 2 ];
  (* a batch torn mid-shipment (lost trailer) is rejected too *)
  let torn = String.sub encoded 0 (String.rindex encoded 'e') in
  match Journal.decode_batch torn with
  | Error (Validate.Bad_shape { reason; _ }) ->
      check "torn shipment names the trailer" true (contains reason "trailer")
  | Ok _ | Error _ -> Alcotest.fail "a truncated batch must be rejected"

let test_journal_ship_torn_boundary_and_compaction () =
  let dir = temp_store () in
  Journal.close (write_records dir ~from:1 ~upto:6);
  (* Tear a 7th record: the store acked seq 7 but its line lost the
     newline, so the journal ends one short of the store. *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Journal.path ~dir)
  in
  output_string oc "7 1 0x1p+0 0123";
  close_out oc;
  (* shipping the intact prefix still works *)
  (match Journal.ship ~dir ~since:4 ~seq:6 ~max:8 () with
  | Ok b ->
      check "intact prefix ships" true (seqs_of b.Journal.b_records = [ 5; 6 ]);
      check "complete up to the intact seq" true b.Journal.b_complete
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* shipping through the tear is a crisp error, not a silent gap *)
  (match Journal.ship ~dir ~since:4 ~seq:7 ~max:8 () with
  | Error (Validate.Bad_shape { reason; _ }) ->
      check "torn boundary diagnosed" true (contains reason "short of store seq")
  | Ok _ | Error _ -> Alcotest.fail "a torn ship boundary must be refused");
  (* Compaction racing an active cursor: repair the tear, rotate away
     the range the stale cursor still needs. *)
  (match Journal.repair ~dir with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Validate.to_string e));
  let w = write_records dir ~from:7 ~upto:8 in
  (match Journal.rotate w ~keep_after:5 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Validate.to_string e));
  Journal.close w;
  (* the stale cursor is told to bootstrap from a snapshot *)
  (match Journal.ship ~dir ~since:2 ~seq:8 ~max:8 () with
  | Error (Validate.Bad_shape { reason; _ }) ->
      check "compacted cursor needs a snapshot" true
        (contains reason "snapshot required")
  | Ok _ | Error _ -> Alcotest.fail "a compacted-away cursor must be refused");
  (* a cursor at the compaction frontier still streams the live suffix *)
  match Journal.ship ~dir ~since:5 ~seq:8 ~max:8 () with
  | Ok b ->
      check "frontier cursor ships the suffix" true
        (seqs_of b.Journal.b_records = [ 6; 7; 8 ]);
      check "suffix is complete" true b.Journal.b_complete
  | Error e -> Alcotest.fail (Validate.to_string e)

(* The authoritative-sequence clamp: the WAL on disk may run past the
   store's acked history — an unacked suffix left behind by a crash
   whose recovery has not repaired yet, or a ship asked as-of an older
   sequence during catch-up. Those records must never ship: a batch
   overrunning its own [b_last_seq] would make a follower apply writes
   the primary never acknowledged. *)
let test_journal_ship_clamps_unacked_suffix () =
  let dir = temp_store () in
  Journal.close (write_records dir ~from:1 ~upto:10);
  (* the journal holds 1..10, but only 1..7 are acked *)
  (match Journal.ship ~dir ~since:4 ~seq:7 ~max:100 () with
  | Ok b ->
      check "unacked suffix clamped out" true
        (seqs_of b.Journal.b_records = [ 5; 6; 7 ]);
      checki "last_seq is the acked history" 7 b.Journal.b_last_seq;
      check "clamped batch is complete" true b.Journal.b_complete
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* max truncation composes with the clamp *)
  (match Journal.ship ~dir ~since:0 ~seq:7 ~max:3 () with
  | Ok b ->
      check "max-bounded prefix" true (seqs_of b.Journal.b_records = [ 1; 2; 3 ]);
      check "still incomplete" false b.Journal.b_complete
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* a cursor already at the older seq ships an empty complete batch *)
  (match Journal.ship ~dir ~since:7 ~seq:7 ~max:8 () with
  | Ok { Journal.b_records = []; b_complete = true; b_last_seq = 7; _ } -> ()
  | Ok _ -> Alcotest.fail "cursor at acked seq must ship empty and complete"
  | Error e -> Alcotest.fail (Validate.to_string e))

let test_journal_ship_fully_compacted () =
  let dir = temp_store () in
  let w = write_records dir ~from:1 ~upto:10 in
  (* compact everything away: the WAL is empty, history ends at 10 *)
  (match Journal.rotate w ~keep_after:10 with
  | Ok kept -> checki "nothing retained" 0 kept
  | Error e -> Alcotest.fail (Validate.to_string e));
  Journal.close w;
  (* a current cursor is still served: empty, complete, no error —
     the warm-standby steady state right after a checkpoint *)
  (match Journal.ship ~dir ~since:10 ~seq:10 ~max:8 () with
  | Ok { Journal.b_records = []; b_complete = true; b_last_seq = 10; _ } -> ()
  | Ok _ -> Alcotest.fail "current cursor on a compacted WAL must be empty/complete"
  | Error e -> Alcotest.fail (Validate.to_string e));
  (* one record behind the frontier: the range is gone — bootstrap *)
  match Journal.ship ~dir ~since:9 ~seq:10 ~max:8 () with
  | Error (Validate.Bad_shape { reason; _ }) ->
      check "compacted-away cursor told to bootstrap" true
        (contains reason "snapshot required")
  | Ok _ | Error _ -> Alcotest.fail "a compacted-away cursor must be refused"

(* --- Incremental re-cut (unit level; end-to-end in test_chaos_update) --- *)

let max_err_of synopsis data =
  let worst = ref 0. in
  Array.iteri
    (fun i v ->
      worst := Float.max !worst (Float.abs (Synopsis.reconstruct_point synopsis i -. v)))
    data;
  !worst

let test_incremental_bound_sound () =
  let n = 64 in
  let rng = Prng.create ~seed:31 in
  let stream = Stream_synopsis.of_data (Array.init n (fun _ -> Prng.float rng 20.)) in
  let inc =
    Incremental.create ~full_every:1_000 ~budget:8 ~metric:Metrics.Abs
      ~epsilon:0.25 stream
  in
  (* The initial full cut's bound is already a sound upper bound. *)
  check "initial bound sound" true
    (Incremental.bound inc
     +. 1e-9
    >= max_err_of (Incremental.synopsis inc) (Stream_synopsis.current_data stream));
  (* Drive 60 random updates in refresh batches of varying width; the
     served bound must stay an upper bound on the true max error after
     every refresh — exact on re-solved subtrees, padded on clean
     ones. *)
  let applied = ref 0 in
  for round = 1 to 12 do
    for _ = 1 to 1 + (round mod 4) do
      let i = Prng.int rng n and delta = Prng.float rng 4.0 -. 2.0 in
      Stream_synopsis.update stream ~i ~delta;
      Incremental.note_update inc ~i ~delta;
      incr applied
    done;
    Incremental.refresh inc stream;
    let true_err =
      max_err_of (Incremental.synopsis inc) (Stream_synopsis.current_data stream)
    in
    if Incremental.bound inc +. 1e-9 < true_err then
      Alcotest.fail
        (Printf.sprintf "round %d: bound %g < true max error %g" round
           (Incremental.bound inc) true_err)
  done;
  let s = Incremental.stats inc in
  checki "every refresh did incremental work" 12 s.Incremental.incrementals;
  checki "no cadenced full cut at full_every=1000" 1 s.Incremental.full_cuts;
  checki "notes counted since the full cut" !applied s.Incremental.since_full;
  (* A full re-cut re-tightens: its bound is the ladder's re-measured
     guarantee, never above the incremental bound it replaces. *)
  let before = Incremental.bound inc in
  (match Incremental.full_cut inc stream with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Validate.to_string e));
  check "full cut never loosens the bound" true
    (Incremental.bound inc <= before +. 1e-9);
  checki "full cut resets the cadence" 0 (Incremental.stats inc).Incremental.since_full

let test_incremental_deterministic_replicas () =
  let n = 32 in
  let data = Array.init n (fun i -> float_of_int ((i * 7) mod 13)) in
  let run () =
    let stream = Stream_synopsis.of_data (Array.copy data) in
    let inc =
      Incremental.create ~full_every:8 ~budget:6 ~metric:Metrics.Abs
        ~epsilon:0.25 stream
    in
    let rng = Prng.create ~seed:17 in
    for _ = 1 to 5 do
      for _ = 1 to 4 do
        let i = Prng.int rng n and delta = Prng.float rng 2.0 -. 1.0 in
        Stream_synopsis.update stream ~i ~delta;
        Incremental.note_update inc ~i ~delta
      done;
      if Incremental.due_full inc then ignore (Incremental.full_cut inc stream)
      else Incremental.refresh inc stream
    done;
    (Synopsis.coeffs (Incremental.synopsis inc), Incremental.bound inc)
  in
  let coeffs_a, bound_a = run () in
  let coeffs_b, bound_b = run () in
  check "replicas serve bit-identical synopses" true (coeffs_a = coeffs_b);
  Alcotest.(check (float 0.)) "and state the same bound" bound_a bound_b

(* --- Deadline --- *)

let test_deadline_state_cap () =
  let d = Deadline.create ~state_cap:10 () in
  let raised = ref None in
  (try
     for _ = 1 to 100 do
       Deadline.tick d
     done
   with Deadline.Deadline_exceeded st -> raised := Some st);
  match !raised with
  | Some st ->
      checki "expired on the state after the cap" 11 st.Deadline.states;
      check "partial progress recorded" true (st.Deadline.checks = 11);
      check "cap echoed" true (st.Deadline.state_cap = Some 10)
  | None -> Alcotest.fail "state cap must trip"

let test_deadline_unlimited () =
  let d = Deadline.unlimited () in
  for _ = 1 to 10_000 do
    Deadline.tick d
  done;
  checki "states counted" 10_000 (Deadline.stats d).Deadline.states;
  check "not expired" false (Deadline.expired d)

let test_deadline_time () =
  let d = Deadline.create ~ms:0.1 () in
  let t0 = Deadline.now_ms () in
  while Deadline.now_ms () -. t0 < 1. do
    ()
  done;
  check "expired after its budget elapsed" true (Deadline.expired d);
  match Deadline.tick d with
  | () -> Alcotest.fail "tick past the budget must raise"
  | exception Deadline.Deadline_exceeded st ->
      check "elapsed reported" true (st.Deadline.elapsed_ms >= 0.1)

let test_deadline_probe_forces_expiry () =
  let d = Deadline.create ~probe:(fun _ -> true) () in
  match Deadline.tick d with
  | () -> Alcotest.fail "probe must force expiry"
  | exception Deadline.Deadline_exceeded _ -> ()

(* --- deadline threading through the solvers --- *)

let sample_data n =
  let rng = Prng.create ~seed:99 in
  Array.init n (fun _ -> Prng.float rng 100. -. 50.)

let test_minmax_deadline_threading () =
  let data = sample_data 64 in
  let d = Deadline.create ~state_cap:5 () in
  match
    Minmax_dp.solve
      ~on_state:(fun () -> Deadline.tick d)
      ~data ~budget:6 Metrics.Abs
  with
  | _ -> Alcotest.fail "5-state cap cannot complete a 64-cell DP"
  | exception Deadline.Deadline_exceeded st ->
      checki "aborted deterministically" 6 st.Deadline.states

let test_approx_deadline_threading () =
  let data = sample_data 64 in
  let d = Deadline.create ~state_cap:3 () in
  match
    Approx_additive.solve_1d
      ~on_state:(fun () -> Deadline.tick d)
      ~data ~budget:6 ~epsilon:0.25 Metrics.Abs
  with
  | _ -> Alcotest.fail "3-state cap cannot complete the approximate DP"
  | exception Deadline.Deadline_exceeded _ -> ()

(* --- Ladder --- *)

let big_data =
  let rng = Prng.create ~seed:5 in
  Array.init 4096 (fun i ->
      (50. *. sin (float_of_int i /. 13.)) +. Prng.float rng 10.)

let test_ladder_tiny_deadline_degrades () =
  match Ladder.serve ~deadline_ms:1.0 ~data:big_data ~budget:8 Metrics.Abs with
  | Error e -> Alcotest.fail (Validate.to_string e)
  | Ok s ->
      check "did not serve the exact tier" true (s.Ladder.tier <> Ladder.Minmax);
      check "guarantee is finite" true (Float.is_finite s.Ladder.max_err);
      check "guarantee is sound" true
        (Float_util.approx_equal ~eps:1e-12 s.Ladder.max_err
           (Metrics.of_synopsis Metrics.Abs ~data:big_data s.Ladder.synopsis));
      check "within budget" true (Synopsis.size s.Ladder.synopsis <= 8);
      check "exact tier was attempted first" true
        (match s.Ladder.attempts with
        | { Ladder.tier = Ladder.Minmax; outcome = Ladder.Timed_out _; _ } :: _
          ->
            true
        | _ -> false)

let test_ladder_no_deadline_is_exact () =
  let data = sample_data 256 in
  let metric = Metrics.Rel { sanity = 1.0 } in
  match Ladder.serve ~data ~budget:10 metric with
  | Error e -> Alcotest.fail (Validate.to_string e)
  | Ok s ->
      check "served by the exact tier" true (s.Ladder.tier = Ladder.Minmax);
      let exact = (Minmax_dp.solve ~data ~budget:10 metric).Minmax_dp.max_err in
      check "max_err equals Minmax_dp.solve's" true
        (Float_util.approx_equal ~eps:1e-12 s.Ladder.max_err exact)

let test_ladder_rejects_bad_input () =
  (match Ladder.serve ~data:[||] ~budget:4 Metrics.Abs with
  | Error (Validate.Bad_shape _) -> ()
  | _ -> Alcotest.fail "empty data must be rejected");
  (match Ladder.serve ~data:[| 1.; 2.; 3. |] ~budget:4 Metrics.Abs with
  | Error (Validate.Bad_shape _) -> ()
  | _ -> Alcotest.fail "non-pow2 data must be rejected");
  (match Ladder.serve ~data:[| 1.; Float.nan |] ~budget:4 Metrics.Abs with
  | Error (Validate.Bad_value _) -> ()
  | _ -> Alcotest.fail "NaN data must be rejected");
  (match Ladder.serve ~data:[| 1.; 2. |] ~budget:(-1) Metrics.Abs with
  | Error (Validate.Bad_budget _) -> ()
  | _ -> Alcotest.fail "negative budget must be rejected");
  match Ladder.serve ~epsilon:0. ~data:[| 1.; 2. |] ~budget:1 Metrics.Abs with
  | Error (Validate.Bad_epsilon _) -> ()
  | _ -> Alcotest.fail "epsilon outside (0,1] must be rejected"

(* --- chaos: deterministic fault injection --- *)

let chaos_data = sample_data 64

let serve_with_fault kind seed =
  let fault = Fault.create ~kinds:[ kind ] ~rate:1.0 ~seed () in
  match Ladder.serve ~fault ~data:chaos_data ~budget:6 Metrics.Abs with
  | Error e -> Alcotest.fail (Validate.to_string e)
  | Ok s -> s

let chaos_case kind () =
  let s = serve_with_fault kind 11 in
  check "guarantee finite under fault" true (Float.is_finite s.Ladder.max_err);
  check "reported guarantee is sound" true
    (Float_util.approx_equal ~eps:1e-12 s.Ladder.max_err
       (Metrics.of_synopsis Metrics.Abs ~data:chaos_data s.Ladder.synopsis));
  check "within budget" true (Synopsis.size s.Ladder.synopsis <= 6);
  (* Determinism: the same seed replays the identical ladder run. *)
  let s' = serve_with_fault kind 11 in
  check "tier deterministic under fixed seed" true
    (s.Ladder.tier = s'.Ladder.tier);
  checks "attempt trace deterministic under fixed seed"
    (Ladder.describe_attempts s.Ladder.attempts)
    (Ladder.describe_attempts s'.Ladder.attempts)

let test_chaos_expire_degrades () =
  let s = serve_with_fault Fault.Expire_deadline 11 in
  check "forced expiry degrades past the exact tier" true
    (s.Ladder.tier = Ladder.Greedy_maxerr);
  check "every bounded tier timed out" true
    (List.for_all
       (fun (a : Ladder.attempt) ->
         match a.Ladder.outcome with
         | Ladder.Timed_out _ -> a.Ladder.tier <> Ladder.Greedy_maxerr
         | Ladder.Answered -> a.Ladder.tier = Ladder.Greedy_maxerr
         | Ladder.Failed _ -> false)
       s.Ladder.attempts)

let test_chaos_alloc_pressure_recovers () =
  let s = serve_with_fault Fault.Alloc_pressure 11 in
  check "pressure degrades to the fault-free floor" true
    (s.Ladder.tier = Ladder.Greedy_maxerr);
  check "faulted attempts recorded as failures" true
    (List.exists
       (fun (a : Ladder.attempt) ->
         match a.Ladder.outcome with Ladder.Failed _ -> true | _ -> false)
       s.Ladder.attempts)

let test_chaos_all_kinds_together () =
  let fault = Fault.create ~rate:0.5 ~seed:1234 () in
  match Ladder.serve ~fault ~data:chaos_data ~budget:6 Metrics.Abs with
  | Error e -> Alcotest.fail (Validate.to_string e)
  | Ok s ->
      check "mixed chaos still serves soundly" true
        (Float.is_finite s.Ladder.max_err
        && Float_util.approx_equal ~eps:1e-12 s.Ladder.max_err
             (Metrics.of_synopsis Metrics.Abs ~data:chaos_data
                s.Ladder.synopsis))

(* --- Engine.build_robust --- *)

let test_engine_build_robust () =
  let relation = Relation.create ~name:"t" (sample_data 128) in
  let metric = Metrics.Abs in
  match Engine.build_robust relation ~budget:9 metric with
  | Error e -> Alcotest.fail (Validate.to_string e)
  | Ok rb ->
      check "unbounded build is the exact tier" true
        (rb.Engine.tier = Ladder.Minmax);
      check "guarantee agrees with Engine.guarantee" true
        (Float_util.approx_equal ~eps:1e-12 rb.Engine.guarantee
           (Engine.guarantee rb.Engine.engine metric));
      check "budget respected" true (Engine.budget_used rb.Engine.engine <= 9)

let test_engine_build_robust_deadline () =
  let relation = Relation.create ~name:"big" big_data in
  match Engine.build_robust ~deadline_ms:1.0 relation ~budget:8 Metrics.Abs with
  | Error e -> Alcotest.fail (Validate.to_string e)
  | Ok rb ->
      check "degraded tier answers" true (rb.Engine.tier <> Ladder.Minmax);
      check "guarantee agrees with Engine.guarantee" true
        (Float_util.approx_equal ~eps:1e-12 rb.Engine.guarantee
           (Engine.guarantee rb.Engine.engine Metrics.Abs))

(* --- adversarial property tests --- *)

(* Adversarial corners the issue calls out explicitly, plus random
   budgets far beyond N. For direct solver calls, [Invalid_argument] is
   the documented contract for out-of-domain input; anything else
   escaping is a bug. The ladder must not raise at all. *)
let corner_inputs =
  [
    ("single", [| 42. |]);
    ("single-zero", [| 0. |]);
    ("pair", [| -1.; 1. |]);
    ("zeros8", Array.make 8 0.);
    ("const16", Array.make 16 7.5);
    ("spike", Array.init 16 (fun i -> if i = 9 then 1e6 else 0.));
    ("tiny", Array.init 8 (fun i -> float_of_int i *. 1e-9));
  ]

let corner_budgets = [ 0; 1; 3; 1000 ]

let solver_calls ~data ~budget metric =
  [
    ( "minmax",
      fun () ->
        let r = Minmax_dp.solve ~data ~budget metric in
        check "minmax reported error is measured" true
          (Float_util.approx_equal ~eps:1e-9 r.Minmax_dp.max_err
             (Metrics.of_synopsis metric ~data r.Minmax_dp.synopsis));
        Synopsis.size r.Minmax_dp.synopsis <= budget );
    ( "approx",
      fun () ->
        let measured, syn =
          Approx_additive.solve_1d ~data ~budget ~epsilon:0.5 metric
        in
        check "approx measured error is measured" true
          (Float_util.approx_equal ~eps:1e-9 measured
             (Metrics.of_synopsis metric ~data syn));
        Synopsis.size syn <= budget );
    ( "greedy",
      fun () ->
        let syn = Greedy_maxerr.threshold ~data ~budget metric in
        check "greedy guarantee finite" true
          (Float.is_finite (Metrics.of_synopsis metric ~data syn));
        Synopsis.size syn <= budget );
  ]

let test_solver_corners () =
  List.iter
    (fun (dname, data) ->
      List.iter
        (fun budget ->
          List.iter
            (fun (sname, call) ->
              let label =
                Printf.sprintf "%s on %s B=%d" sname dname budget
              in
              match call () with
              | within -> check (label ^ " within budget") true within
              | exception Invalid_argument _ ->
                  (* documented contract for out-of-domain input *)
                  ()
              | exception e ->
                  Alcotest.fail
                    (label ^ " leaked " ^ Printexc.to_string e))
            (solver_calls ~data ~budget (Metrics.Rel { sanity = 0.5 })))
        corner_budgets)
    corner_inputs

let test_ladder_corners () =
  List.iter
    (fun (dname, data) ->
      List.iter
        (fun budget ->
          let label = Printf.sprintf "ladder on %s B=%d" dname budget in
          match Ladder.serve ~data ~budget Metrics.Abs with
          | Ok s ->
              check (label ^ " guarantee sound") true
                (Float_util.approx_equal ~eps:1e-12 s.Ladder.max_err
                   (Metrics.of_synopsis Metrics.Abs ~data s.Ladder.synopsis));
              check
                (label ^ " within budget")
                true
                (Synopsis.size s.Ladder.synopsis <= budget)
          | Error _ -> Alcotest.fail (label ^ " must serve valid input")
          | exception e ->
              Alcotest.fail (label ^ " raised " ^ Printexc.to_string e))
        corner_budgets)
    corner_inputs

let prop_ladder_serves_random_inputs =
  QCheck.Test.make ~name:"ladder serves random inputs soundly" ~count:60
    QCheck.(
      triple
        (array_of_size (Gen.oneofl [ 1; 2; 4; 8; 16; 32 ])
           (float_range (-100.) 100.))
        (int_bound 40) (int_bound 1000))
    (fun (data, budget, seed) ->
      let fault = Fault.create ~rate:0.3 ~seed () in
      (* The shrinker may hand us empty / non-pow2 arrays: those must
         come back as structured errors, never exceptions. *)
      let invalid =
        Array.length data = 0 || not (Float_util.is_pow2 (Array.length data))
      in
      match Ladder.serve ~fault ~data ~budget Metrics.Abs with
      | Error _ -> invalid
      | Ok s ->
          Float.is_finite s.Ladder.max_err
          && Synopsis.size s.Ladder.synopsis <= budget
          && Float_util.approx_equal ~eps:1e-9 s.Ladder.max_err
               (Metrics.of_synopsis Metrics.Abs ~data s.Ladder.synopsis))

let prop_ladder_state_cap_still_serves =
  QCheck.Test.make ~name:"state-capped ladder always serves" ~count:40
    QCheck.(
      pair
        (array_of_size (Gen.oneofl [ 16; 32; 64 ]) (float_range (-50.) 50.))
        (int_bound 10))
    (fun (data, budget) ->
      let invalid =
        Array.length data = 0 || not (Float_util.is_pow2 (Array.length data))
      in
      match Ladder.serve ~state_cap:20 ~data ~budget Metrics.Abs with
      | Error _ -> invalid
      | Ok s ->
          (* 20 states cannot finish the exact DP on 32+ cells with a
             non-trivial budget (budget 0 collapses to one state per
             node). *)
          (Array.length data < 32 || budget = 0
          || s.Ladder.tier <> Ladder.Minmax)
          && Float.is_finite s.Ladder.max_err)

(* Ladder invariants: tiers are tried in their canonical degradation
   order (the greedy floor may appear twice — faulted, then fault-free),
   the serving attempt is always last, and the reported guarantee is
   exactly what a fresh [Metrics] re-measure of the served synopsis on
   the pristine input yields. *)
let tier_rank ~epsilon = function
  | Ladder.Minmax -> 0
  | Ladder.Approx_additive { epsilon = e } ->
      if Float_util.approx_equal ~eps:1e-12 e epsilon then 1 else 2
  | Ladder.Greedy_maxerr -> 3

let prop_ladder_attempt_order =
  QCheck.Test.make ~name:"attempts try tiers in ladder order, served last"
    ~count:80
    QCheck.(
      triple
        (array_of_size (Gen.oneofl [ 8; 16; 32; 64 ]) (float_range (-50.) 50.))
        (int_bound 8) (int_bound 1000))
    (fun (data, budget, seed) ->
      let invalid =
        Array.length data = 0 || not (Float_util.is_pow2 (Array.length data))
      in
      let epsilon = 0.25 in
      let fault = Fault.create ~rate:0.4 ~seed () in
      (* A small state cap makes upper tiers time out on bigger inputs,
         so the order property is exercised across real degradations. *)
      match
        Ladder.serve ~state_cap:(16 + (seed mod 64)) ~epsilon ~fault ~data
          ~budget Metrics.Abs
      with
      | Error _ -> invalid
      | Ok s ->
          let ranks =
            List.map
              (fun (a : Ladder.attempt) -> tier_rank ~epsilon a.Ladder.tier)
              s.Ladder.attempts
          in
          let rec ordered = function
            | a :: (b :: _ as tl) ->
                (a < b || (a = b && a = 3)) && ordered tl
            | _ -> true
          in
          let rec last = function
            | [ a ] -> Some a
            | _ :: tl -> last tl
            | [] -> None
          in
          ordered ranks
          && (match last s.Ladder.attempts with
             | Some a ->
                 a.Ladder.outcome = Ladder.Answered && a.Ladder.tier = s.Ladder.tier
             | None -> false)
          && List.for_all
               (fun (a : Ladder.attempt) ->
                 a.Ladder.outcome <> Ladder.Answered
                 || a.Ladder.tier = s.Ladder.tier)
               s.Ladder.attempts)

let prop_ladder_guarantee_is_remeasured =
  QCheck.Test.make
    ~name:"served guarantee equals a fresh Metrics re-measure" ~count:80
    QCheck.(
      triple
        (array_of_size (Gen.oneofl [ 8; 16; 32; 64 ]) (float_range (-50.) 50.))
        (int_bound 8) (int_bound 1000))
    (fun (data, budget, seed) ->
      let invalid =
        Array.length data = 0 || not (Float_util.is_pow2 (Array.length data))
      in
      let fault = Fault.create ~rate:0.4 ~seed () in
      let metric =
        if seed mod 2 = 0 then Metrics.Abs else Metrics.Rel { sanity = 1.0 }
      in
      match
        Ladder.serve ~state_cap:(16 + (seed mod 64)) ~fault ~data ~budget metric
      with
      | Error _ -> invalid
      | Ok s ->
          (* Bit-exact: the ladder promises a *measured* guarantee, not
             a solver-reported one. *)
          Float.equal s.Ladder.max_err
            (Metrics.of_synopsis metric ~data s.Ladder.synopsis))

let prop_validated_ingestion_total =
  QCheck.Test.make ~name:"Validate.data never raises" ~count:200
    QCheck.(
      array_of_size (Gen.int_bound 20)
        (oneof [ float_range (-1e12) 1e12; always Float.nan; always Float.infinity ]))
    (fun data ->
      match Validate.data data with
      | Ok _ | Error _ -> true)

let () =
  Alcotest.run "robust"
    [
      ( "validate",
        [
          Alcotest.test_case "parse_float" `Quick test_parse_float;
          Alcotest.test_case "read_file" `Quick test_read_file;
          Alcotest.test_case "read_file caps" `Quick test_read_file_caps;
          Alcotest.test_case "read_updates" `Quick test_read_updates;
          Alcotest.test_case "CRLF / newline-less final line" `Quick
            test_read_line_endings;
          Alcotest.test_case "data / budget / epsilon" `Quick test_data_checks;
          QCheck_alcotest.to_alcotest prop_validated_ingestion_total;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff is seeded and bounded" `Quick
            test_retry_backoff_deterministic;
          Alcotest.test_case "with_retries" `Quick test_with_retries;
          Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "corrupt generations fall back" `Quick
            test_snapshot_corrupt_falls_back;
          Alcotest.test_case "rotation prunes" `Quick
            test_snapshot_prunes_generations;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip and since" `Quick test_journal_roundtrip;
          Alcotest.test_case "truncates at first corruption, repairs" `Quick
            test_journal_truncates_at_corruption;
          Alcotest.test_case "torn tail and rotation" `Quick
            test_journal_torn_tail_and_rotation;
          Alcotest.test_case "ship cursor pages and completes" `Quick
            test_journal_ship_cursor;
          Alcotest.test_case "shipped batch rejects bit flips" `Quick
            test_journal_ship_rejects_bit_flip;
          Alcotest.test_case "ship vs torn boundary and compaction" `Quick
            test_journal_ship_torn_boundary_and_compaction;
          Alcotest.test_case "ship clamps the unacked suffix" `Quick
            test_journal_ship_clamps_unacked_suffix;
          Alcotest.test_case "ship serves a fully compacted WAL" `Quick
            test_journal_ship_fully_compacted;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "served bound stays sound under updates" `Quick
            test_incremental_bound_sound;
          Alcotest.test_case "replicas converge bit-identically" `Quick
            test_incremental_deterministic_replicas;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "state cap trips" `Quick test_deadline_state_cap;
          Alcotest.test_case "unlimited never trips" `Quick
            test_deadline_unlimited;
          Alcotest.test_case "time budget trips" `Quick test_deadline_time;
          Alcotest.test_case "probe forces expiry" `Quick
            test_deadline_probe_forces_expiry;
          Alcotest.test_case "threads through Minmax_dp" `Quick
            test_minmax_deadline_threading;
          Alcotest.test_case "threads through Approx_additive" `Quick
            test_approx_deadline_threading;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "1ms deadline on N=4096 degrades" `Quick
            test_ladder_tiny_deadline_degrades;
          Alcotest.test_case "no deadline serves the exact optimum" `Quick
            test_ladder_no_deadline_is_exact;
          Alcotest.test_case "invalid input is a structured error" `Quick
            test_ladder_rejects_bad_input;
          Alcotest.test_case "corner inputs" `Quick test_ladder_corners;
          QCheck_alcotest.to_alcotest prop_ladder_serves_random_inputs;
          QCheck_alcotest.to_alcotest prop_ladder_state_cap_still_serves;
          QCheck_alcotest.to_alcotest prop_ladder_attempt_order;
          QCheck_alcotest.to_alcotest prop_ladder_guarantee_is_remeasured;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "expire-deadline" `Quick
            (chaos_case Fault.Expire_deadline);
          Alcotest.test_case "nan-coefficient" `Quick
            (chaos_case Fault.Nan_coefficient);
          Alcotest.test_case "alloc-pressure" `Quick
            (chaos_case Fault.Alloc_pressure);
          Alcotest.test_case "expire degrades to greedy" `Quick
            test_chaos_expire_degrades;
          Alcotest.test_case "pressure recovers at the floor" `Quick
            test_chaos_alloc_pressure_recovers;
          Alcotest.test_case "all kinds together" `Quick
            test_chaos_all_kinds_together;
        ] );
      ( "engine",
        [
          Alcotest.test_case "build_robust unbounded" `Quick
            test_engine_build_robust;
          Alcotest.test_case "build_robust with deadline" `Quick
            test_engine_build_robust_deadline;
        ] );
      ( "solver corners",
        [ Alcotest.test_case "adversarial inputs" `Quick test_solver_corners ]
      );
    ]
