(* Tests for the AQP engine, the OLAP cube layer and the streaming
   maintenance extension. *)

module Relation = Wavesyn_aqp.Relation
module Engine = Wavesyn_aqp.Engine
module Cube = Wavesyn_aqp.Cube
module Stream_synopsis = Wavesyn_stream.Stream_synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Synopsis = Wavesyn_synopsis.Synopsis
module Prob_synopsis = Wavesyn_baselines.Prob_synopsis
module Signal = Wavesyn_datagen.Signal
module Ndarray = Wavesyn_util.Ndarray
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

(* --- Relation --- *)

let test_relation_padding () =
  let r = Relation.create ~name:"t" [| 1.; 2.; 3. |] in
  checki "domain" 3 (Relation.domain r);
  checki "padded" 4 (Relation.padded_domain r);
  checkf "padding zeros" 0. (Relation.frequencies r).(3);
  checkf "total" 6. (Relation.total r)

let test_relation_of_tuples () =
  let r = Relation.of_tuples ~name:"t" ~domain:4 [ 0; 0; 1; 3; 3; 3 ] in
  check "histogram" true (Relation.frequencies r = [| 2.; 1.; 0.; 3. |]);
  Alcotest.check_raises "out of domain"
    (Invalid_argument "Relation.of_tuples: value out of domain")
    (fun () -> ignore (Relation.of_tuples ~name:"t" ~domain:4 [ 4 ]))

(* --- Engine --- *)

let make_relation () =
  let rng = Prng.create ~seed:55 in
  Relation.create ~name:"r"
    (Array.map (fun x -> x +. 2.) (Signal.gaussian_bumps ~rng ~n:64 ~bumps:3 ~amplitude:200.))

let test_engine_exact_answers_at_full_budget () =
  let r = make_relation () in
  let e = Engine.build r ~budget:64 Engine.L2_greedy in
  let a = Engine.range_sum e ~lo:5 ~hi:40 in
  checkf "exact at full budget" a.Engine.exact a.Engine.approx;
  let p = Engine.point e 13 in
  checkf "point exact" p.Engine.exact p.Engine.approx

let test_engine_strategies_all_run () =
  let r = make_relation () in
  let metric = Metrics.Rel { sanity = 20. } in
  List.iter
    (fun strategy ->
      let e = Engine.build r ~budget:8 strategy in
      (* Probabilistic synopses only bound the EXPECTED size; a single
         coin-flip draw can retain more than B coefficients. *)
      (match strategy with
      | Engine.Probabilistic _ -> ()
      | _ ->
          check
            (Engine.strategy_name strategy ^ " within budget")
            true
            (Engine.budget_used e <= 8));
      let a = Engine.range_sum e ~lo:0 ~hi:31 in
      check "answer finite" true (Float.is_finite a.Engine.approx);
      check "guarantee finite" true (Float.is_finite (Engine.guarantee e metric)))
    [
      Engine.L2_greedy;
      Engine.Minmax metric;
      Engine.Minmax Metrics.Abs;
      Engine.Greedy_maxerr metric;
      Engine.Probabilistic
        { strategy = Prob_synopsis.Min_rel_var; metric; seed = 1 };
      Engine.Probabilistic
        { strategy = Prob_synopsis.Min_rel_bias; metric; seed = 1 };
    ]

let test_engine_minmax_guarantee_is_best () =
  let r = make_relation () in
  let metric = Metrics.Rel { sanity = 20. } in
  let budget = 12 in
  let g strategy = Engine.guarantee (Engine.build r ~budget strategy) metric in
  let minmax = g (Engine.Minmax metric) in
  check "minmax <= l2" true (minmax <= g Engine.L2_greedy +. 1e-9);
  check "minmax <= greedy-me" true (minmax <= g (Engine.Greedy_maxerr metric) +. 1e-9)

let test_engine_workload_report () =
  let r = make_relation () in
  let e = Engine.build r ~budget:10 Engine.L2_greedy in
  let rng = Prng.create ~seed:56 in
  let ranges = Signal.ranges ~rng ~n:64 ~count:50 ~min_len:1 ~max_len:16 in
  let rep = Engine.run_range_workload e ranges in
  checki "queries" 50 rep.Engine.queries;
  check "mean <= max" true (rep.Engine.mean_rel_err <= rep.Engine.max_rel_err +. 1e-12);
  check "p95 <= max" true (rep.Engine.p95_rel_err <= rep.Engine.max_rel_err +. 1e-12)

let test_engine_selectivity_sums_to_one () =
  let r = make_relation () in
  let e = Engine.build r ~budget:64 Engine.L2_greedy in
  let n = Relation.padded_domain r in
  let s = Engine.selectivity e ~lo:0 ~hi:(n - 1) in
  checkf "full range selectivity" 1. s.Engine.approx

let test_engine_interval_contains_truth () =
  let r = make_relation () in
  let e = Engine.build r ~budget:10 (Engine.Minmax Metrics.Abs) in
  let data = Relation.frequencies r in
  let rng = Prng.create ~seed:61 in
  for _ = 1 to 20 do
    let lo = Prng.int rng 32 in
    let hi = lo + Prng.int rng (64 - lo) in
    let estimate, half = Engine.range_sum_interval e ~lo ~hi in
    let exact =
      Wavesyn_synopsis.Range_query.range_sum_exact data ~lo ~hi
    in
    check
      (Printf.sprintf "interval [%g +- %g] contains %g" estimate half exact)
      true
      (Float.abs (exact -. estimate) <= half +. 1e-9)
  done

module Workload = Wavesyn_aqp.Workload

let test_workload_generation () =
  let rng = Prng.create ~seed:70 in
  let qs = Workload.generate ~rng ~n:64 () in
  checki "100 queries" 100 (List.length qs);
  List.iter
    (fun q ->
      match q with
      | Workload.Point i -> check "point in domain" true (i >= 0 && i < 64)
      | Workload.Range_sum (lo, hi) | Workload.Selectivity (lo, hi) ->
          check "range valid" true (0 <= lo && lo <= hi && hi < 64)
      | Workload.Quantile q -> check "q valid" true (q > 0. && q < 1.))
    qs

let test_workload_run () =
  let r = make_relation () in
  let e = Engine.build r ~budget:12 (Engine.Minmax Metrics.Abs) in
  let rng = Prng.create ~seed:71 in
  let qs = Workload.generate ~rng ~n:(Relation.padded_domain r) () in
  let reports = Workload.run e qs in
  checki "four kinds" 4 (List.length reports);
  List.iter
    (fun rep ->
      checki (rep.Workload.kind ^ " count") 25 rep.Workload.count;
      check (rep.Workload.kind ^ " mean <= max") true
        (rep.Workload.mean_rel_err <= rep.Workload.max_rel_err +. 1e-12))
    reports

let test_workload_exact_engine_zero_error () =
  let r = make_relation () in
  let e = Engine.build r ~budget:(Relation.padded_domain r) Engine.L2_greedy in
  let rng = Prng.create ~seed:72 in
  let qs = Workload.generate ~rng ~n:(Relation.padded_domain r) () in
  List.iter
    (fun rep ->
      check
        (Printf.sprintf "%s exact (max %g)" rep.Workload.kind rep.Workload.max_rel_err)
        true
        (rep.Workload.max_rel_err <= 1e-9))
    (Workload.run e qs)

(* --- Cube --- *)

let test_cube_padding_and_queries () =
  let data = Ndarray.of_flat_array ~dims:[| 3; 3 |] (Array.init 9 float_of_int) in
  let cube = Cube.create ~name:"c" data in
  check "padded to 4x4" true (Ndarray.dims (Cube.data cube) = [| 4; 4 |]);
  let syn = Cube.build cube ~budget:16 Cube.L2_greedy_md in
  let a = Cube.range_sum cube syn ~ranges:[| (0, 2); (0, 2) |] in
  checkf "exact total" 36. a.Cube.exact;
  checkf "full budget approx" 36. a.Cube.approx

let test_cube_of_tuples () =
  let cube =
    Cube.of_tuples ~name:"t" ~dims:(2, 3) [ (0, 0); (0, 0); (1, 2); (0, 1) ]
  in
  let data = Cube.data cube in
  checkf "(0,0) count" 2. (Ndarray.get data [| 0; 0 |]);
  checkf "(1,2) count" 1. (Ndarray.get data [| 1; 2 |]);
  checkf "padding zero" 0. (Ndarray.get data [| 3; 3 |]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cube.of_tuples: coordinate out of range")
    (fun () -> ignore (Cube.of_tuples ~name:"t" ~dims:(2, 2) [ (2, 0) ]))

let test_cube_strategies () =
  let rng = Prng.create ~seed:57 in
  let grid = Ndarray.map Float.round (Signal.grid_bumps ~rng ~side:8 ~bumps:3 ~amplitude:30.) in
  let cube = Cube.create ~name:"sales" grid in
  List.iter
    (fun strategy ->
      let syn = Cube.build cube ~budget:10 strategy in
      check
        (Cube.md_strategy_name strategy ^ " within budget")
        true
        (Synopsis.Md.size syn <= 10);
      let g = Cube.guarantee cube syn Metrics.Abs in
      check "finite guarantee" true (Float.is_finite g))
    [
      Cube.L2_greedy_md;
      Cube.Additive { epsilon = 0.2; metric = Metrics.Abs };
      Cube.Abs_approx { epsilon = 0.25 };
    ]

let test_cube_additive_guarantee_not_worse_than_l2 () =
  let rng = Prng.create ~seed:58 in
  let grid = Signal.grid_int ~rng ~side:8 ~levels:30 in
  let cube = Cube.create ~name:"g" grid in
  let l2 = Cube.guarantee cube (Cube.build cube ~budget:12 Cube.L2_greedy_md) Metrics.Abs in
  let add =
    Cube.guarantee cube
      (Cube.build cube ~budget:12 (Cube.Additive { epsilon = 0.05; metric = Metrics.Abs }))
      Metrics.Abs
  in
  check
    (Printf.sprintf "additive(0.05) <= l2 (%g vs %g)" add l2)
    true (add <= l2 +. 1e-9)

(* --- Streaming --- *)

let test_stream_matches_batch_decomposition () =
  let rng = Prng.create ~seed:59 in
  let n = 64 in
  let stream = Stream_synopsis.create ~n in
  let reference = Array.make n 0. in
  for _ = 1 to 500 do
    let i = Prng.int rng n in
    let delta = Prng.float rng 4. -. 2. in
    reference.(i) <- reference.(i) +. delta;
    Stream_synopsis.update stream ~i ~delta
  done;
  let batch = Wavesyn_haar.Haar1d.decompose reference in
  for j = 0 to n - 1 do
    check
      (Printf.sprintf "coefficient %d matches batch" j)
      true
      (Float_util.approx_equal ~eps:1e-6 batch.(j) (Stream_synopsis.coefficient stream j))
  done;
  let current = Stream_synopsis.current_data stream in
  for i = 0 to n - 1 do
    check "data matches" true (Float_util.approx_equal ~eps:1e-6 reference.(i) current.(i))
  done

let test_stream_of_data () =
  let data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |] in
  let stream = Stream_synopsis.of_data data in
  checkf "c0" 2.75 (Stream_synopsis.coefficient stream 0);
  checki "nonzero" 5 (Stream_synopsis.nonzero_count stream)

let test_stream_cancellation_removes_coefficients () =
  let stream = Stream_synopsis.create ~n:8 in
  Stream_synopsis.update stream ~i:3 ~delta:4.;
  check "has coefficients" true (Stream_synopsis.nonzero_count stream > 0);
  Stream_synopsis.update stream ~i:3 ~delta:(-4.);
  checki "all cancelled" 0 (Stream_synopsis.nonzero_count stream)

let test_stream_cuts () =
  let rng = Prng.create ~seed:60 in
  let stream = Stream_synopsis.create ~n:32 in
  for _ = 1 to 300 do
    Stream_synopsis.update stream ~i:(Prng.int rng 32) ~delta:(Prng.float rng 3.)
  done;
  let data = Stream_synopsis.current_data stream in
  let metric = Metrics.Rel { sanity = 5. } in
  let l2 = Metrics.of_synopsis metric ~data (Stream_synopsis.cut_l2 stream ~budget:6) in
  let mm = Metrics.of_synopsis metric ~data (Stream_synopsis.cut_minmax stream ~budget:6 metric) in
  check "minmax cut <= l2 cut" true (mm <= l2 +. 1e-9);
  checki "updates counted" 300 (Stream_synopsis.updates_seen stream)

let test_stream_validation () =
  Alcotest.check_raises "bad n"
    (Invalid_argument "Stream_synopsis.create: n must be a power of two")
    (fun () -> ignore (Stream_synopsis.create ~n:6));
  let s = Stream_synopsis.create ~n:8 in
  Alcotest.check_raises "bad cell"
    (Invalid_argument "Stream_synopsis.update: cell out of range")
    (fun () -> Stream_synopsis.update s ~i:8 ~delta:1.)

(* Duplicate-index deltas accumulate: applying several deltas to one
   cell is the same as applying their sum, in coefficients and in
   reconstructed data — the property that makes an UPDATE storm's
   per-delta journal records equivalent to their net effect. *)
let test_stream_duplicate_index_accumulates () =
  let n = 16 in
  let a = Stream_synopsis.create ~n and b = Stream_synopsis.create ~n in
  List.iter
    (fun delta -> Stream_synopsis.update a ~i:5 ~delta)
    [ 0.5; 0.25; -1.0; 0.125; 0.5 ];
  Stream_synopsis.update b ~i:5 ~delta:(0.5 +. 0.25 -. 1.0 +. 0.125 +. 0.5);
  for j = 0 to n - 1 do
    checkf
      (Printf.sprintf "coefficient %d" j)
      (Stream_synopsis.coefficient b j)
      (Stream_synopsis.coefficient a j)
  done;
  let da = Stream_synopsis.current_data a
  and db = Stream_synopsis.current_data b in
  for i = 0 to n - 1 do
    checkf (Printf.sprintf "cell %d" i) db.(i) da.(i)
  done;
  checki "every delta counted individually" 5 (Stream_synopsis.updates_seen a)

(* The durable write path rejects what the raw stream would accept or
   crash on: out-of-domain cells and non-finite deltas come back as
   structured validation errors, with nothing journaled or applied. *)
let test_store_delta_validation () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wavesyn_aqp_delta_%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let module Supervisor = Wavesyn_robust.Supervisor in
  let module Validate = Wavesyn_robust.Validate in
  let scfg =
    Supervisor.config ~sync:false ~dir ~n:16 ~budget:4
      Wavesyn_synopsis.Metrics.Abs
  in
  let sup =
    match Supervisor.open_store scfg with
    | Ok s -> s
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  Fun.protect ~finally:(fun () -> Supervisor.close sup) @@ fun () ->
  let rejected what = function
    | Error (Validate.Bad_value { reason; _ }) -> reason
    | Error e ->
        Alcotest.fail (what ^ ": wrong error " ^ Validate.to_string e)
    | Ok _ -> Alcotest.fail (what ^ ": accepted")
  in
  let r = rejected "negative cell" (Supervisor.ingest sup ~i:(-1) ~delta:1.) in
  check "negative cell names the domain" true
    (r = "cell out of domain [0, 16)");
  let r = rejected "cell past n" (Supervisor.ingest sup ~i:16 ~delta:1.) in
  check "cell past n names the domain" true (r = "cell out of domain [0, 16)");
  List.iter
    (fun delta ->
      let r = rejected "non-finite delta" (Supervisor.ingest sup ~i:3 ~delta) in
      check "non-finite delta named" true (r = "not finite (NaN/Inf)"))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  checki "nothing journaled by any rejection" 0 (Supervisor.seq sup);
  checki "nothing applied to the stream" 0
    (Stream_synopsis.updates_seen (Supervisor.stream sup));
  (* and the file-level ingestion path refuses non-finite tokens *)
  let storm_file = Filename.concat dir "storm.txt" in
  let oc = open_out storm_file in
  output_string oc "3 nan\n";
  close_out oc;
  match Validate.read_updates storm_file with
  | Error (Validate.Bad_value { token = "nan"; _ }) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Validate.to_string e)
  | Ok _ -> Alcotest.fail "nan token must be a structured error"

let () =
  Alcotest.run "aqp_stream"
    [
      ( "relation",
        [
          Alcotest.test_case "padding" `Quick test_relation_padding;
          Alcotest.test_case "of_tuples" `Quick test_relation_of_tuples;
        ] );
      ( "engine",
        [
          Alcotest.test_case "exact at full budget" `Quick test_engine_exact_answers_at_full_budget;
          Alcotest.test_case "all strategies run" `Quick test_engine_strategies_all_run;
          Alcotest.test_case "minmax guarantee best" `Quick test_engine_minmax_guarantee_is_best;
          Alcotest.test_case "workload report" `Quick test_engine_workload_report;
          Alcotest.test_case "selectivity sums to one" `Quick test_engine_selectivity_sums_to_one;
          Alcotest.test_case "interval contains truth" `Quick test_engine_interval_contains_truth;
          Alcotest.test_case "workload generation" `Quick test_workload_generation;
          Alcotest.test_case "workload run" `Quick test_workload_run;
          Alcotest.test_case "workload exact engine" `Quick test_workload_exact_engine_zero_error;
        ] );
      ( "cube",
        [
          Alcotest.test_case "padding and queries" `Quick test_cube_padding_and_queries;
          Alcotest.test_case "of_tuples" `Quick test_cube_of_tuples;
          Alcotest.test_case "strategies" `Quick test_cube_strategies;
          Alcotest.test_case "additive <= l2" `Quick test_cube_additive_guarantee_not_worse_than_l2;
        ] );
      ( "stream",
        [
          Alcotest.test_case "matches batch" `Quick test_stream_matches_batch_decomposition;
          Alcotest.test_case "of_data" `Quick test_stream_of_data;
          Alcotest.test_case "cancellation" `Quick test_stream_cancellation_removes_coefficients;
          Alcotest.test_case "cuts" `Quick test_stream_cuts;
          Alcotest.test_case "validation" `Quick test_stream_validation;
          Alcotest.test_case "duplicate-index deltas accumulate" `Quick
            test_stream_duplicate_index_accumulates;
          Alcotest.test_case "store rejects bad deltas structurally" `Quick
            test_store_delta_validation;
        ] );
    ]
