(* Workload-adaptive serving suite: the shared mix string form, the
   workload profiler, pre-cut tier ladders, the epoch-keyed result
   cache, batch fusion's bit-identity contract, the sharded router's
   sub-range memo at quantile shard boundaries, and the end-to-end
   cache-on/cache-off transcript byte-identity proof over live
   sockets.

   Run via `dune runtest` or in isolation via `dune build @adaptive`.
   A watchdog alarm fails the whole suite rather than letting a hung
   socket test wedge the runner. *)

module Prng = Wavesyn_util.Prng
module Synopsis = Wavesyn_synopsis.Synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Range_query = Wavesyn_synopsis.Range_query
module Quantiles = Wavesyn_aqp.Quantiles
module Workload = Wavesyn_aqp.Workload
module Ladder = Wavesyn_robust.Ladder
module Validate = Wavesyn_robust.Validate
module Registry = Wavesyn_obs.Registry
module Pool = Wavesyn_par.Pool
module Profiler = Wavesyn_adaptive.Profiler
module Tiers = Wavesyn_adaptive.Tiers
module Rcache = Wavesyn_adaptive.Rcache
module Fusion = Wavesyn_adaptive.Fusion
module Wire = Wavesyn_server.Wire
module Shard = Wavesyn_server.Shard
module Server = Wavesyn_server.Server
module Client = Wavesyn_server.Client
module Loadgen = Wavesyn_server.Loadgen

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Watchdog: a hung socket test must fail the suite, not wedge it. *)
let () =
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         prerr_endline
           "adaptive watchdog: a socket test hung past the deadline";
         exit 124));
  ignore (Unix.alarm 300)

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "%s/wavesyn-adaptive-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !counter

let must_s = function Ok v -> v | Error reason -> Alcotest.fail reason

let must = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Validate.to_string e)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Integer-valued positive data: exact under budget >= n, quantiles
   answerable. *)
let exact_data n = Array.init n (fun i -> float_of_int (((i * 37) mod 101) + 3))

(* --- the shared mix string form --- *)

let test_mix_strings () =
  let m =
    must_s (Workload.mix_of_string "points=10,ranges=70,selectivities=10,quantiles=10")
  in
  checki "points" 10 m.Workload.points;
  checki "ranges" 70 m.Workload.ranges;
  checki "selectivities" 10 m.Workload.selectivities;
  checki "quantiles" 10 m.Workload.quantiles;
  (* Round-trip through the canonical rendering. *)
  checks "round-trip" "points=10,ranges=70,selectivities=10,quantiles=10"
    (Workload.mix_to_string m);
  check "reparse equals" true
    (must_s (Workload.mix_of_string (Workload.mix_to_string m)) = m);
  (* Omitted kinds get weight zero. *)
  let m = must_s (Workload.mix_of_string "ranges=3") in
  checki "omitted points" 0 m.Workload.points;
  checki "kept ranges" 3 m.Workload.ranges;
  (* Structured parse errors. *)
  let fails s expected =
    match Workload.mix_of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed" s)
    | Error reason ->
        check (Printf.sprintf "%S error mentions %S" s expected) true
          (contains reason expected)
  in
  fails "tempo=3" "unknown mix kind";
  fails "ranges=riches" "bad mix weight";
  fails "ranges" "want kind=weight";
  fails "ranges=-1" "bad mix weight";
  fails "points=0,ranges=0" "no positive weight";
  (* The load generator accepts the same plural spec and maps
     selectivities onto its own flat mix. *)
  let lm =
    must_s (Loadgen.mix_of_string "points=1,ranges=2,selectivities=3,quantiles=4")
  in
  checki "loadgen point alias" 1 lm.Loadgen.point;
  checki "loadgen range alias" 2 lm.Loadgen.range;
  checki "loadgen selectivity alias" 3 lm.Loadgen.selectivity;
  checki "loadgen quantile alias" 4 lm.Loadgen.quantile;
  check "loadgen singular spec still parses" true
    (Loadgen.mix_of_string "point=4,range=3,quantile=2,ping=1"
    = Ok Loadgen.default_mix)

(* --- the workload profiler --- *)

let test_profiler () =
  let p = Profiler.create () in
  checki "empty total" 0 (Profiler.total p);
  List.iter (Profiler.observe p)
    [ `Range; `Point; `Range; `Quantile; `Range; `Selectivity ];
  let m = Profiler.observed p in
  checki "points observed" 1 m.Workload.points;
  checki "ranges observed" 3 m.Workload.ranges;
  checki "selectivities observed" 1 m.Workload.selectivities;
  checki "quantiles observed" 1 m.Workload.quantiles;
  checki "total" 6 (Profiler.total p);
  (* With a registry, the sketch is exposed as adaptive.observed. *)
  let obs = Registry.create () in
  let p = Profiler.create ~obs () in
  Profiler.observe p `Range;
  check "adaptive.observed exported" true
    (contains (Registry.render_table obs) "adaptive.observed")

(* --- pre-cut tiers --- *)

let heavy_mix = must_s (Workload.mix_of_string "points=2,ranges=5,quantiles=3")
let point_mix = must_s (Workload.mix_of_string "points=9,ranges=1")

let test_tiers_plan () =
  (* Point-heavy: geometric decay. *)
  check "light schedule" true
    (Tiers.plan ~budget:8 ~levels:3 ~mix:point_mix = [ 8; 4; 2 ]);
  (* Range/quantile-heavy: every degraded level floored at half. *)
  check "heavy schedule" true
    (Tiers.plan ~budget:8 ~levels:3 ~mix:heavy_mix = [ 8; 4; 4 ]);
  check "budget floor is 1" true
    (Tiers.plan ~budget:1 ~levels:3 ~mix:point_mix = [ 1; 1; 1 ]);
  check "levels < 1 rejected" true
    (match Tiers.plan ~budget:8 ~levels:0 ~mix:point_mix with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "budget < 1 rejected" true
    (match Tiers.plan ~budget:0 ~levels:1 ~mix:point_mix with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_tiers_build () =
  let data = exact_data 32 in
  let ts =
    must
      (Tiers.build ~epsilon:0.25 ~metric:Metrics.Abs ~data ~budget:8 ~levels:3
         ~mix:point_mix ~seq:7)
  in
  checki "levels" 3 (Tiers.levels ts);
  checki "built seq recorded" 7 (Tiers.built_seq ts);
  check "fresh at its seq" true (Tiers.fresh ts ~seq:7);
  check "stale after a write" false (Tiers.fresh ts ~seq:8);
  let e0 = Tiers.select ts ~level:0 in
  let e1 = Tiers.select ts ~level:1 in
  let e2 = Tiers.select ts ~level:2 in
  checki "level 0 full budget" 8 e0.Tiers.e_budget;
  checki "level 1 half budget" 4 e1.Tiers.e_budget;
  checki "level 2 quarter budget" 2 e2.Tiers.e_budget;
  check "names carry budget and tier" true
    (contains e0.Tiers.e_name "precut(b=8," && contains e2.Tiers.e_name "b=2");
  (* Out-of-range levels clamp to the built range. *)
  check "negative level clamps" true (Tiers.select ts ~level:(-1) == e0);
  check "deep level clamps" true (Tiers.select ts ~level:9 == e2);
  (* Level 0 is exactly the cut the classic re-cut path makes at
     pressure 0: same top, same budget, same data — same coefficients. *)
  let served =
    must
      (Ladder.serve ~epsilon:0.25 ~top:`Minmax ~data ~budget:8 Metrics.Abs)
  in
  check "level 0 equals the classic pressure-0 cut" true
    (Synopsis.coeffs e0.Tiers.e_synopsis
    = Synopsis.coeffs served.Ladder.synopsis);
  check "describe joins the names" true
    (contains (Tiers.describe ts) e1.Tiers.e_name)

(* --- the epoch-keyed result cache --- *)

let test_rcache () =
  let c = Rcache.create ~cap:2 () in
  check "miss on empty" true (Rcache.find c ~epoch:0 "a" = None);
  Rcache.add c ~epoch:0 "a" 1;
  check "hit after add" true (Rcache.find c ~epoch:0 "a" = Some 1);
  checki "one hit" 1 (Rcache.hits c);
  checki "one miss" 1 (Rcache.misses c);
  (* A present key is not overwritten (same epoch implies the same
     value by determinism). *)
  Rcache.add c ~epoch:0 "a" 99;
  check "no overwrite" true (Rcache.find c ~epoch:0 "a" = Some 1);
  (* Epoch advance flushes everything before the operation answers. *)
  check "epoch change misses" true (Rcache.find c ~epoch:1 "a" = None);
  checki "flush counted" 1 (Rcache.invalidations c);
  checki "table emptied" 0 (Rcache.size c);
  (* Flush-on-full: a fresh key into a full table clears it first. *)
  Rcache.add c ~epoch:1 "a" 1;
  Rcache.add c ~epoch:1 "b" 2;
  checki "at capacity" 2 (Rcache.size c);
  Rcache.add c ~epoch:1 "c" 3;
  checki "capacity flush kept only the newcomer" 1 (Rcache.size c);
  check "newcomer present" true (Rcache.find c ~epoch:1 "c" = Some 3);
  check "cap < 1 rejected" true
    (match Rcache.create ~cap:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- batch fusion bit-identity --- *)

let test_fusion_bit_identity () =
  let rng = Prng.create ~seed:42 in
  List.iter
    (fun (n, budget) ->
      let data = Array.init n (fun _ -> Prng.float rng 8.0 +. 0.25) in
      let served =
        must (Ladder.serve ~epsilon:0.25 ~top:`Greedy ~data ~budget Metrics.Abs)
      in
      let syn = served.Ladder.synopsis in
      let plan = Fusion.plan syn in
      checki "plan n" n (Fusion.n plan);
      checki "plan size" (Synopsis.size syn) (Fusion.size plan);
      (* Every range: identical bits, not merely close. *)
      for lo = 0 to n - 1 do
        for hi = lo to n - 1 do
          let a = Range_query.range_sum syn ~lo ~hi in
          let b = Fusion.range_sum plan ~lo ~hi in
          if Int64.bits_of_float a <> Int64.bits_of_float b then
            Alcotest.fail
              (Printf.sprintf "range [%d, %d]: %h <> %h (n=%d b=%d)" lo hi a b
                 n budget)
        done
      done;
      (* A quantile grid: identical positions. *)
      List.iter
        (fun q ->
          checki
            (Printf.sprintf "quantile %g (n=%d b=%d)" q n budget)
            (Quantiles.estimate syn ~q)
            (Fusion.quantile plan ~q))
        [ 0.; 0.01; 0.25; 0.5; 0.75; 0.99; 1. ])
    [ (16, 4); (16, 16); (64, 7); (64, 64); (128, 13) ];
  (* Same validity surface, same messages. *)
  let data = exact_data 16 in
  let served =
    must (Ladder.serve ~epsilon:0.25 ~top:`Minmax ~data ~budget:16 Metrics.Abs)
  in
  let plan = Fusion.plan served.Ladder.synopsis in
  let msg f = match f () with
    | exception Invalid_argument m -> m
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  checks "bad bounds message" "Range_query: invalid range bounds"
    (msg (fun () -> Fusion.range_sum plan ~lo:3 ~hi:2));
  checks "bad q message" "Quantiles: q must be in [0, 1]"
    (msg (fun () -> Fusion.quantile plan ~q:1.5));
  let zero = Fusion.plan (Synopsis.make ~n:8 []) in
  checks "non-positive total message"
    "Quantiles: estimated total is not positive"
    (msg (fun () -> Fusion.quantile zero ~q:0.5))

(* --- the sharded router's sub-range memo --- *)

(* In-process stub shards: each answers RANGE from an exact synopsis
   over its slice and counts every RPC it serves, so the test can see
   exactly which probes the memo absorbed. *)
let stub_shards ~data ~ranges =
  List.map
    (fun { Shard.lo; hi } ->
      let slice = Array.sub data lo (hi - lo + 1) in
      let served =
        must
          (Ladder.serve ~epsilon:0.25 ~top:`Minmax ~data:slice
             ~budget:(Array.length slice) Metrics.Abs)
      in
      let syn = served.Ladder.synopsis in
      let calls = ref 0 in
      let rpc req =
        incr calls;
        match req with
        | Wire.Range { lo; hi } -> (
            match Range_query.range_sum syn ~lo ~hi with
            | v -> Ok [ Wire.Value v ]
            | exception Invalid_argument _ ->
                Ok
                  [
                    Wire.Error
                      { code = Wire.Out_of_range; message = "bad sub-range" };
                  ])
        | Wire.Point i -> Ok [ Wire.Value (Synopsis.reconstruct_point syn i) ]
        | Wire.Retier _ -> Ok [ Wire.Pong ]
        | _ ->
            Ok [ Wire.Error { code = Wire.Internal; message = "stub" } ]
      in
      (rpc, calls))
    ranges

let test_shard_memo_quantiles () =
  let n = 64 in
  let data = exact_data n in
  let full =
    must
      (Ladder.serve ~epsilon:0.25 ~top:`Minmax ~data ~budget:n Metrics.Abs)
  in
  let full_syn = full.Ladder.synopsis in
  let ranges = must_s (Shard.split ~n ~shards:4) in
  (* Probe grid plus the exact cumulative fractions at every shard
     boundary, so bisections terminate exactly on boundary cells. *)
  let total = Range_query.range_sum full_syn ~lo:0 ~hi:(n - 1) in
  let boundary_qs =
    List.concat_map
      (fun { Shard.lo; hi } ->
        [
          Range_query.range_sum full_syn ~lo:0 ~hi /. total;
          (if lo > 0 then Range_query.range_sum full_syn ~lo:0 ~hi:(lo - 1) /. total
           else 0.);
        ])
      ranges
  in
  let qs = [ 0.; 0.1; 0.37; 0.5; 0.73; 0.9; 1. ] @ boundary_qs in
  let run ~memo =
    let stubs = stub_shards ~data ~ranges in
    let rpcs = Array.of_list (List.map fst stubs) in
    let router = must_s (Shard.router ~n ~ranges rpcs) in
    if memo then Shard.set_cache router ~cap:4096;
    let calls () = List.fold_left (fun acc (_, c) -> acc + !c) 0 stubs in
    let replies = List.map (fun q -> Shard.eval router (Wire.Quantile q)) qs in
    (router, replies, calls)
  in
  let _, plain_replies, plain_calls = run ~memo:false in
  let router, memo_replies, memo_calls = run ~memo:true in
  let plain_calls = plain_calls () in
  (* Byte-identical replies, and every one agrees with the unsharded
     bisection. *)
  check "memo on/off replies identical" true (plain_replies = memo_replies);
  List.iter2
    (fun q reply ->
      match reply with
      | Wire.Quantile_pos pos ->
          checki
            (Printf.sprintf "quantile %g matches unsharded" q)
            (Quantiles.estimate full_syn ~q)
            pos
      | r -> Alcotest.fail ("quantile: " ^ Wire.describe_reply r))
    qs plain_replies;
  (* A bisection's prefix probes repeat across quantiles: the memo
     must absorb a large share of the sub-range RPCs. *)
  check
    (Printf.sprintf "memo cut RPCs (%d -> %d)" plain_calls (memo_calls ()))
    true
    (memo_calls () < plain_calls / 2);
  checki "memo hits + misses = plain probe count" plain_calls
    (Shard.memo_hits router + Shard.memo_misses router);
  check "memo hits observed" true (Shard.memo_hits router > 0);
  (* Re-asking an already-answered quantile is free while shard state
     stands still... *)
  let before = memo_calls () in
  ignore (Shard.eval router (Wire.Quantile 0.5));
  checki "repeat quantile fully absorbed" before (memo_calls ());
  (* ...but a RETIER broadcast can change every shard synopsis: the
     memo must flush, so the same quantile goes back to the shards. *)
  Shard.retier router 1;
  let after_retier = memo_calls () in
  (match Shard.eval router (Wire.Quantile 0.5) with
  | Wire.Quantile_pos _ -> ()
  | r -> Alcotest.fail ("post-retier quantile: " ^ Wire.describe_reply r));
  check "retier flushed the memo" true (memo_calls () > after_retier)

(* --- end-to-end: cache on/off transcript byte-identity --- *)

let loadgen_against ~cfg ~jobs ~hot ~mix ~seed ~requests ~batch ~n =
  let pool = Pool.create ~domains:jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let server = Server.create ~pool cfg in
  let runner = Domain.spawn (fun () -> Server.run server) in
  let buf = Buffer.create 4096 in
  let client =
    match Client.connect ~wait_ms:5000. cfg.Server.path with
    | Ok c -> c
    | Error e -> Alcotest.fail (Validate.to_string e)
  in
  let summary =
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    let result =
      Loadgen.run ~hot ~rpc:(Client.request client) ~seed ~requests ~batch ~n
        ~mix ~out:(Buffer.add_string buf) ()
    in
    ignore (Client.request_one client Wire.Shutdown);
    must result
  in
  (match Domain.join runner with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Validate.to_string e));
  (Buffer.contents buf, summary, Registry.render_table (Server.registry server))

(* Pull a counter's value out of a rendered metrics table: rows read
   [counter    NAME    VALUE unit]. *)
let counter_value table name =
  match
    List.find_opt
      (fun l -> contains l name)
      (String.split_on_char '\n' table)
  with
  | None -> Alcotest.fail (name ^ " not in table")
  | Some line -> (
      match List.filter (fun s -> s <> "") (String.split_on_char ' ' line) with
      | _kind :: _name :: value :: _ -> int_of_string value
      | _ -> Alcotest.fail ("unparseable metrics row: " ^ line))

let test_server_cache_transcripts () =
  let n = 64 in
  let mix = must_s (Loadgen.mix_of_string "ranges=6,quantiles=2") in
  let run ~cache ~jobs =
    let cfg =
      Server.config ~budget:8 ~queue_bound:16 ~cache ~path:(sock_path ())
        (exact_data n)
    in
    loadgen_against ~cfg ~jobs ~hot:6 ~mix ~seed:29 ~requests:48 ~batch:4 ~n
  in
  let t_off, s_off, table_off = run ~cache:false ~jobs:1 in
  let t_on, s_on, table_on = run ~cache:true ~jobs:1 in
  let _t_on4, s_on4, _ = run ~cache:true ~jobs:4 in
  check "cache-on transcript byte-identical to cache-off" true
    (String.equal t_off t_on);
  checks "crc identical" s_off.Loadgen.transcript_crc
    s_on.Loadgen.transcript_crc;
  checks "crc identical across jobs" s_on.Loadgen.transcript_crc
    s_on4.Loadgen.transcript_crc;
  (* The hot set actually repeated queries, and the cache saw them. *)
  check "cache hits counted" true
    (counter_value table_on "serve.cache.hits" > 0);
  check "cache-off table has no cache family" false
    (contains table_off "serve.cache.hits")

let test_server_cache_sharded () =
  (* The sharded front-end with --cache: transcripts byte-identical to
     the uncached sharded run, across shard counts. *)
  let n = 64 in
  let data = exact_data n in
  let mix = must_s (Loadgen.mix_of_string "ranges=5,quantiles=3") in
  let run ~cache ~shards =
    let ranges = must_s (Shard.split ~n ~shards) in
    let shard_paths = List.map (fun _ -> sock_path ()) ranges in
    let runners =
      List.map2
        (fun path { Shard.lo; hi } ->
          let slice = Array.sub data lo (hi - lo + 1) in
          let server =
            Server.create (Server.config ~budget:(hi - lo + 1) ~path slice)
          in
          Domain.spawn (fun () -> Server.run server))
        shard_paths ranges
    in
    let clients =
      List.map
        (fun p ->
          match Client.connect ~wait_ms:5000. p with
          | Ok c -> c
          | Error e -> Alcotest.fail (Validate.to_string e))
        shard_paths
    in
    let rpcs =
      Array.of_list (List.map (fun c req -> Client.request c req) clients)
    in
    let router = must_s (Shard.router ~n ~ranges rpcs) in
    let cfg =
      Server.config ~budget:n ~queue_bound:16 ~cache ~path:(sock_path ()) data
    in
    let pool = Pool.create ~domains:1 () in
    let server = Server.create ~pool ~router cfg in
    let front_runner = Domain.spawn (fun () -> Server.run server) in
    let buf = Buffer.create 4096 in
    let summary =
      Fun.protect
        ~finally:(fun () ->
          Shard.shutdown router;
          List.iter Client.close clients;
          List.iter
            (fun r ->
              match Domain.join r with Ok () | Error _ -> ())
            runners;
          Pool.shutdown pool)
      @@ fun () ->
      let client =
        match Client.connect ~wait_ms:5000. cfg.Server.path with
        | Ok c -> c
        | Error e -> Alcotest.fail (Validate.to_string e)
      in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      let result =
        Loadgen.run ~hot:5 ~rpc:(Client.request client) ~seed:31 ~requests:32
          ~batch:4 ~n ~mix ~out:(Buffer.add_string buf) ()
      in
      ignore (Client.request_one client Wire.Shutdown);
      must result
    in
    (match Domain.join front_runner with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Validate.to_string e));
    (Buffer.contents buf, summary)
  in
  let t_off, _ = run ~cache:false ~shards:2 in
  let t_on, s_on = run ~cache:true ~shards:2 in
  let _t_on4, s_on4 = run ~cache:true ~shards:4 in
  check "sharded cache-on transcript identical to cache-off" true
    (String.equal t_off t_on);
  checks "identical across shard counts" s_on.Loadgen.transcript_crc
    s_on4.Loadgen.transcript_crc

(* --- end-to-end: pre-cut tiers --- *)

let test_server_tiers () =
  let n = 64 in
  let mix = must_s (Loadgen.mix_of_string "points=2,ranges=5,quantiles=3") in
  let run ~jobs =
    let cfg =
      Server.config ~budget:8 ~queue_bound:3 ~tiers:3 ~adapt_every:4
        ~path:(sock_path ()) (exact_data n)
    in
    loadgen_against ~cfg ~jobs ~hot:0 ~mix ~seed:17 ~requests:48 ~batch:8 ~n
  in
  let t1, s1, table = run ~jobs:1 in
  let t3, s3, _ = run ~jobs:3 in
  (* Deterministic across pool sizes, like every serving mode. *)
  check "tiers transcripts byte-identical across jobs" true
    (String.equal t1 t3);
  checks "tiers crc identical" s1.Loadgen.transcript_crc
    s3.Loadgen.transcript_crc;
  (* The batch of 8 against a bound of 3 sheds: overload replies must
     advertise a pre-cut tier. *)
  check "overloads happened" true (s1.Loadgen.overloads > 0);
  check "overload advertises a pre-cut tier" true (contains t1 "precut(b=");
  check "adaptive.observed exported" true (contains table "adaptive.observed")

let () =
  Alcotest.run "adaptive"
    [
      ( "workload",
        [
          Alcotest.test_case "mix strings" `Quick test_mix_strings;
          Alcotest.test_case "profiler" `Quick test_profiler;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "plan" `Quick test_tiers_plan;
          Alcotest.test_case "build/select" `Quick test_tiers_build;
        ] );
      ( "cache",
        [
          Alcotest.test_case "rcache" `Quick test_rcache;
          Alcotest.test_case "shard memo quantiles" `Quick
            test_shard_memo_quantiles;
        ] );
      ( "fusion",
        [ Alcotest.test_case "bit identity" `Quick test_fusion_bit_identity ] );
      ( "serving",
        [
          Alcotest.test_case "cache transcripts" `Quick
            test_server_cache_transcripts;
          Alcotest.test_case "cache sharded" `Quick test_server_cache_sharded;
          Alcotest.test_case "tiers" `Quick test_server_tiers;
        ] );
    ]
