(* Tests for the nonstandard multi-dimensional Haar decomposition,
   including the Figure 1(b) sign patterns for a 4x4 array. *)

module Haar1d = Wavesyn_haar.Haar1d
module Haar_md = Wavesyn_haar.Haar_md
module Ndarray = Wavesyn_util.Ndarray
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

let random_nd rng dims =
  Ndarray.init ~dims (fun _ -> Prng.float rng 20. -. 10.)

let test_d1_matches_haar1d () =
  let rng = Prng.create ~seed:5 in
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> Prng.float rng 10. -. 5.) in
      let w1 = Haar1d.decompose a in
      let wm =
        Haar_md.decompose (Ndarray.of_flat_array ~dims:[| n |] (Array.copy a))
      in
      Array.iteri
        (fun i c ->
          check
            (Printf.sprintf "n=%d coeff %d" n i)
            true
            (Float_util.approx_equal ~eps:1e-9 c (Ndarray.get_flat wm i)))
        w1)
    [ 1; 2; 4; 8; 32 ]

let roundtrip_case name dims seed () =
  let rng = Prng.create ~seed in
  let a = random_nd rng dims in
  let back = Haar_md.reconstruct (Haar_md.decompose a) in
  check name true (Ndarray.equal ~eps:1e-8 a back)

let test_point_matches_data () =
  let rng = Prng.create ~seed:9 in
  let a = random_nd rng [| 8; 8 |] in
  let w = Haar_md.decompose a in
  Ndarray.iteri
    (fun idx v -> checkf "2d point" v (Haar_md.point ~wavelet:w idx))
    a

let test_point_matches_data_3d () =
  let rng = Prng.create ~seed:10 in
  let a = random_nd rng [| 4; 4; 4 |] in
  let w = Haar_md.decompose a in
  Ndarray.iteri
    (fun idx v -> checkf "3d point" v (Haar_md.point ~wavelet:w idx))
    a

let test_rejects_bad_shapes () =
  Alcotest.check_raises "unequal dims"
    (Invalid_argument "Haar_md: dimensions must all be equal")
    (fun () -> ignore (Haar_md.decompose (Ndarray.create ~dims:[| 2; 4 |] 0.)));
  Alcotest.check_raises "non pow2"
    (Invalid_argument "Haar_md: dimensions must be powers of two")
    (fun () -> ignore (Haar_md.decompose (Ndarray.create ~dims:[| 3; 3 |] 0.)))

let test_side_levels () =
  let a = Ndarray.create ~dims:[| 8; 8 |] 0. in
  checki "side" 8 (Haar_md.side a);
  checki "levels" 3 (Haar_md.levels a)

let test_average_cell () =
  (* Coefficient (0,0) of the transform is the overall average. *)
  let a =
    Ndarray.of_flat_array ~dims:[| 2; 2 |] [| 1.; 2.; 3.; 4. |]
  in
  let w = Haar_md.decompose a in
  checkf "overall average" 2.5 (Ndarray.get w [| 0; 0 |])

let test_2x2_by_hand () =
  (* Block [[a b][c d]]: row step then column step of (avg, diff/2).
     avg = (a+b+c+d)/4; detail along dim1 = (a-b+c-d)/4;
     detail along dim0 = (a+b-c-d)/4; diagonal = (a-b-c+d)/4. *)
  let a = Ndarray.of_flat_array ~dims:[| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let w = Haar_md.decompose a in
  checkf "avg" 2.5 (Ndarray.get w [| 0; 0 |]);
  checkf "detail dim1" (-0.5) (Ndarray.get w [| 0; 1 |]);
  checkf "detail dim0" (-1.) (Ndarray.get w [| 1; 0 |]);
  checkf "diagonal" 0. (Ndarray.get w [| 1; 1 |])

(* Figure 1(b): sign patterns of the sixteen nonstandard basis functions
   for a 4x4 array. We verify the structural pattern for representative
   coefficients. Cell indexing is (dim0, dim1). *)
let fig1b_signs coeff =
  let w = Ndarray.create ~dims:[| 4; 4 |] 0. in
  Array.init 4 (fun x ->
      Array.init 4 (fun y -> Haar_md.sign_at w ~coeff ~cell:[| x; y |]))

let test_fig1b_overall_average () =
  let signs = fig1b_signs [| 0; 0 |] in
  Array.iter (fun row -> Array.iter (fun s -> checki "all +" 1 s) row) signs

let test_fig1b_w11 () =
  (* W[1,1]: detail along both dimensions at the coarsest level:
     quadrant checkerboard over 2x2 quadrants. *)
  let signs = fig1b_signs [| 1; 1 |] in
  for x = 0 to 3 do
    for y = 0 to 3 do
      let expected = (if x < 2 then 1 else -1) * if y < 2 then 1 else -1 in
      checki (Printf.sprintf "W11 (%d,%d)" x y) expected signs.(x).(y)
    done
  done

let test_fig1b_w01 () =
  (* W[0,1]: average along dim0, detail along dim1: vertical split. *)
  let signs = fig1b_signs [| 0; 1 |] in
  for x = 0 to 3 do
    for y = 0 to 3 do
      let expected = if y < 2 then 1 else -1 in
      checki (Printf.sprintf "W01 (%d,%d)" x y) expected signs.(x).(y)
    done
  done

let test_fig1b_w33 () =
  (* W[3,3]: level-1 diagonal detail for quadrant q=(1,1): support is
     cells [2,4)x[2,4) (the paper's "upper right quadrant"), zero
     elsewhere, checkerboard inside. *)
  let signs = fig1b_signs [| 3; 3 |] in
  for x = 0 to 3 do
    for y = 0 to 3 do
      let expected =
        if x < 2 || y < 2 then 0
        else (if x = 2 then 1 else -1) * if y = 2 then 1 else -1
      in
      checki (Printf.sprintf "W33 (%d,%d)" x y) expected signs.(x).(y)
    done
  done

let test_fig1b_w20 () =
  (* W[2,0]: level-1 detail along dim0 for quadrant q=(0,0): support
     [0,2)x[0,2), split along dim0. *)
  let signs = fig1b_signs [| 2; 0 |] in
  for x = 0 to 3 do
    for y = 0 to 3 do
      let expected = if x >= 2 || y >= 2 then 0 else if x = 0 then 1 else -1 in
      checki (Printf.sprintf "W20 (%d,%d)" x y) expected signs.(x).(y)
    done
  done

let test_support_of_coeff () =
  let w = Ndarray.create ~dims:[| 4; 4 |] 0. in
  check "avg support" true (Haar_md.support_of_coeff w [| 0; 0 |] = [| (0, 4); (0, 4) |]);
  check "W11 support" true (Haar_md.support_of_coeff w [| 1; 1 |] = [| (0, 4); (0, 4) |]);
  check "W33 support" true (Haar_md.support_of_coeff w [| 3; 3 |] = [| (2, 4); (2, 4) |]);
  check "W20 support" true (Haar_md.support_of_coeff w [| 2; 0 |] = [| (0, 2); (0, 2) |])

let test_parallel_matches_sequential () =
  let rng = Prng.create ~seed:99 in
  List.iter
    (fun dims ->
      let a = random_nd rng dims in
      let seq = Haar_md.decompose a in
      List.iter
        (fun k ->
          let par = Haar_md.decompose_parallel ~num_domains:k a in
          check
            (Printf.sprintf "%dd with %d domains bit-equal" (Array.length dims) k)
            true
            (Ndarray.to_flat_array seq = Ndarray.to_flat_array par))
        [ 1; 2; 4 ])
    [ [| 64 |]; [| 64; 64 |]; [| 16; 16; 16 |] ]

let test_parallel_validation () =
  Alcotest.check_raises "bad domains"
    (Invalid_argument "Haar_md.decompose_parallel: bad num_domains")
    (fun () ->
      ignore
        (Haar_md.decompose_parallel ~num_domains:0
           (Ndarray.create ~dims:[| 2; 2 |] 0.)))

let prop_roundtrip_2d =
  QCheck.Test.make ~name:"2d roundtrip" ~count:50
    QCheck.(array_of_size (Gen.return 16) (float_range (-100.) 100.))
    (fun flat ->
      let a = Ndarray.of_flat_array ~dims:[| 4; 4 |] flat in
      Ndarray.equal ~eps:1e-8 a (Haar_md.reconstruct (Haar_md.decompose a)))

let prop_roundtrip_3d =
  QCheck.Test.make ~name:"3d roundtrip" ~count:30
    QCheck.(array_of_size (Gen.return 8) (float_range (-100.) 100.))
    (fun flat ->
      let a = Ndarray.of_flat_array ~dims:[| 2; 2; 2 |] flat in
      Ndarray.equal ~eps:1e-8 a (Haar_md.reconstruct (Haar_md.decompose a)))

let prop_sign_reconstruction_2d =
  QCheck.Test.make ~name:"2d sum of sign*coeff reconstructs cells" ~count:30
    QCheck.(array_of_size (Gen.return 16) (float_range (-100.) 100.))
    (fun flat ->
      let a = Ndarray.of_flat_array ~dims:[| 4; 4 |] flat in
      let w = Haar_md.decompose a in
      let ok = ref true in
      Ndarray.iteri
        (fun cell v ->
          let acc = ref 0. in
          for f = 0 to Ndarray.size w - 1 do
            let coeff = Ndarray.index_of_flat w f in
            acc :=
              !acc
              +. float_of_int (Haar_md.sign_at w ~coeff ~cell)
                 *. Ndarray.get_flat w f
          done;
          if not (Float_util.approx_equal ~eps:1e-6 v !acc) then ok := false)
        a;
      !ok)

let prop_linearity_2d =
  QCheck.Test.make ~name:"2d transform is linear" ~count:30
    QCheck.(
      pair
        (array_of_size (Gen.return 16) (float_range (-50.) 50.))
        (array_of_size (Gen.return 16) (float_range (-50.) 50.)))
    (fun (fa, fb) ->
      let a = Ndarray.of_flat_array ~dims:[| 4; 4 |] fa in
      let b = Ndarray.of_flat_array ~dims:[| 4; 4 |] fb in
      let sum = Ndarray.of_flat_array ~dims:[| 4; 4 |] (Array.map2 ( +. ) fa fb) in
      let ws = Haar_md.decompose sum in
      let wa = Haar_md.decompose a and wb = Haar_md.decompose b in
      let ok = ref true in
      for f = 0 to 15 do
        if
          not
            (Float_util.approx_equal ~eps:1e-6 (Ndarray.get_flat ws f)
               (Ndarray.get_flat wa f +. Ndarray.get_flat wb f))
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "haar_md"
    [
      ( "transform",
        [
          Alcotest.test_case "D=1 matches Haar1d" `Quick test_d1_matches_haar1d;
          Alcotest.test_case "2d roundtrip 4x4" `Quick (roundtrip_case "4x4" [| 4; 4 |] 1);
          Alcotest.test_case "2d roundtrip 16x16" `Quick (roundtrip_case "16x16" [| 16; 16 |] 2);
          Alcotest.test_case "3d roundtrip 4^3" `Quick (roundtrip_case "4^3" [| 4; 4; 4 |] 3);
          Alcotest.test_case "4d roundtrip 2^4" `Quick (roundtrip_case "2^4" [| 2; 2; 2; 2 |] 4);
          Alcotest.test_case "2d point" `Quick test_point_matches_data;
          Alcotest.test_case "3d point" `Quick test_point_matches_data_3d;
          Alcotest.test_case "bad shapes" `Quick test_rejects_bad_shapes;
          Alcotest.test_case "side/levels" `Quick test_side_levels;
          Alcotest.test_case "overall average" `Quick test_average_cell;
          Alcotest.test_case "2x2 by hand" `Quick test_2x2_by_hand;
          Alcotest.test_case "parallel bit-equal" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "parallel validation" `Quick test_parallel_validation;
          QCheck_alcotest.to_alcotest prop_roundtrip_2d;
          QCheck_alcotest.to_alcotest prop_roundtrip_3d;
          QCheck_alcotest.to_alcotest prop_linearity_2d;
        ] );
      ( "figure 1(b) signs",
        [
          Alcotest.test_case "overall average all +" `Quick test_fig1b_overall_average;
          Alcotest.test_case "W[1,1] checkerboard" `Quick test_fig1b_w11;
          Alcotest.test_case "W[0,1] vertical split" `Quick test_fig1b_w01;
          Alcotest.test_case "W[3,3] quadrant detail" `Quick test_fig1b_w33;
          Alcotest.test_case "W[2,0] quadrant split" `Quick test_fig1b_w20;
          Alcotest.test_case "supports" `Quick test_support_of_coeff;
          QCheck_alcotest.to_alcotest prop_sign_reconstruction_2d;
        ] );
    ]
