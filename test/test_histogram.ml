(* Tests for the histogram comparator (V-optimal, max-error-optimal,
   equal-width). *)

module Histogram = Wavesyn_baselines.Histogram
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

let random_data ~seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun _ -> Prng.float rng 100. -. 50.)

(* Exhaustive optimal segmentations for validation on small inputs. *)
let brute_best ~data ~k ~cost ~combine ~init =
  let n = Array.length data in
  let best = ref Float.infinity in
  (* enumerate bucket start vectors 0 = b0 < b1 < ... < b_{k-1} < n *)
  let rec go starts prev remaining =
    if remaining = 0 then begin
      let bounds = Array.of_list (List.rev starts) in
      let total = ref init in
      Array.iteri
        (fun b lo ->
          let hi =
            if b + 1 < Array.length bounds then bounds.(b + 1) - 1 else n - 1
          in
          total := combine !total (cost lo hi))
        bounds;
      if !total < !best then best := !total
    end
    else
      for s = prev + 1 to n - remaining do
        go (s :: starts) s (remaining - 1)
      done
  in
  go [ 0 ] 0 (k - 1);
  !best

let sse_cost data lo hi =
  let len = float_of_int (hi - lo + 1) in
  let sum = ref 0. in
  for i = lo to hi do
    sum := !sum +. data.(i)
  done;
  let mean = !sum /. len in
  let acc = ref 0. in
  for i = lo to hi do
    acc := !acc +. ((data.(i) -. mean) *. (data.(i) -. mean))
  done;
  !acc

let midrange_cost data lo hi =
  let mn = ref data.(lo) and mx = ref data.(lo) in
  for i = lo to hi do
    if data.(i) < !mn then mn := data.(i);
    if data.(i) > !mx then mx := data.(i)
  done;
  (!mx -. !mn) /. 2.

let test_structure () =
  let data = random_data ~seed:1 16 in
  let h = Histogram.equal_width ~data ~buckets:4 in
  checki "bucket count" 4 (Histogram.size h);
  checki "domain" 16 (Histogram.n h);
  let bs = Histogram.buckets h in
  checki "list length" 4 (List.length bs);
  (* coverage: contiguous, starts at 0, ends at n-1 *)
  let rec covers expected = function
    | [] -> check "ends at n-1" true (expected = 16)
    | (lo, hi, _) :: rest ->
        checki "contiguous" expected lo;
        check "ordered" true (hi >= lo);
        covers (hi + 1) rest
  in
  covers 0 bs

let test_point_and_reconstruct () =
  let data = [| 1.; 1.; 5.; 5.; 9.; 9.; 9.; 9. |] in
  let h = Histogram.max_error_optimal ~data ~buckets:3 in
  checkf "perfect with 3 buckets" 0. (Histogram.max_abs_err h ~data);
  let r = Histogram.reconstruct h in
  Array.iteri (fun i d -> checkf (Printf.sprintf "cell %d" i) d r.(i)) data

let test_v_optimal_matches_brute () =
  for seed = 1 to 6 do
    let data = random_data ~seed 10 in
    List.iter
      (fun k ->
        let h = Histogram.v_optimal ~data ~buckets:k in
        let sse =
          List.fold_left
            (fun acc (lo, hi, _) -> acc +. sse_cost data lo hi)
            0. (Histogram.buckets h)
        in
        let best =
          brute_best ~data ~k ~cost:(sse_cost data) ~combine:( +. ) ~init:0.
        in
        check
          (Printf.sprintf "seed %d k=%d sse %g vs brute %g" seed k sse best)
          true
          (Float_util.approx_equal ~eps:1e-6 sse best))
      [ 1; 2; 3; 4 ]
  done

let test_max_error_matches_brute () =
  for seed = 1 to 6 do
    let data = random_data ~seed:(seed + 50) 10 in
    List.iter
      (fun k ->
        let h = Histogram.max_error_optimal ~data ~buckets:k in
        let err = Histogram.max_abs_err h ~data in
        let best =
          brute_best ~data ~k ~cost:(midrange_cost data) ~combine:Float.max
            ~init:0.
        in
        check
          (Printf.sprintf "seed %d k=%d err %g vs brute %g" seed k err best)
          true
          (Float_util.approx_equal ~eps:1e-6 err best))
      [ 1; 2; 3; 4 ]
  done

let test_monotone_in_buckets () =
  let data = random_data ~seed:60 32 in
  let errs =
    List.map
      (fun k ->
        Histogram.max_abs_err (Histogram.max_error_optimal ~data ~buckets:k) ~data)
      [ 1; 2; 4; 8; 16; 32 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
        check "monotone" true (b <= a +. 1e-9);
        non_increasing rest
    | _ -> ()
  in
  non_increasing errs;
  checkf "n buckets is exact" 0. (List.nth errs 5)

let test_range_sum () =
  let data = [| 2.; 2.; 4.; 4.; 6.; 6.; 6.; 6. |] in
  let h = Histogram.max_error_optimal ~data ~buckets:3 in
  checkf "exact histogram, exact sums" 12.
    (Histogram.range_sum h ~lo:1 ~hi:3 +. 2.);
  checkf "full" 36. (Histogram.range_sum h ~lo:0 ~hi:7)

let test_buckets_capped_at_n () =
  let data = [| 1.; 2. |] in
  let h = Histogram.v_optimal ~data ~buckets:10 in
  checki "capped" 2 (Histogram.size h);
  checkf "exact" 0. (Histogram.max_abs_err h ~data)

let test_validation () =
  Alcotest.check_raises "zero buckets"
    (Invalid_argument "Histogram: need at least one bucket")
    (fun () -> ignore (Histogram.v_optimal ~data:[| 1. |] ~buckets:0));
  Alcotest.check_raises "empty data"
    (Invalid_argument "Histogram: empty data")
    (fun () -> ignore (Histogram.v_optimal ~data:[||] ~buckets:1))

let test_single_bucket_values () =
  let data = [| 0.; 4.; 8. |] in
  let vopt = Histogram.v_optimal ~data ~buckets:1 in
  let merr = Histogram.max_error_optimal ~data ~buckets:1 in
  (match Histogram.buckets vopt with
  | [ (0, 2, v) ] -> checkf "v-opt uses mean" 4. v
  | _ -> Alcotest.fail "one bucket expected");
  match Histogram.buckets merr with
  | [ (0, 2, v) ] -> checkf "max-err uses midrange" 4. v
  | _ -> Alcotest.fail "one bucket expected"

let prop_vopt_not_worse_than_equal_width =
  QCheck.Test.make ~name:"v-optimal SSE <= equal-width SSE" ~count:50
    QCheck.(
      pair
        (array_of_size (Gen.int_range 4 24) (float_range (-50.) 50.))
        (int_range 1 6))
    (fun (data, k) ->
      let sse h =
        List.fold_left
          (fun acc (lo, hi, v) ->
            let s = ref acc in
            for i = lo to hi do
              s := !s +. ((data.(i) -. v) *. (data.(i) -. v))
            done;
            !s)
          0. (Histogram.buckets h)
      in
      sse (Histogram.v_optimal ~data ~buckets:k)
      <= sse (Histogram.equal_width ~data ~buckets:k) +. 1e-6)

let prop_maxerr_not_worse_than_others =
  QCheck.Test.make ~name:"max-error histogram beats the other builds" ~count:50
    QCheck.(
      pair
        (array_of_size (Gen.int_range 4 24) (float_range (-50.) 50.))
        (int_range 1 6))
    (fun (data, k) ->
      let me h = Histogram.max_abs_err h ~data in
      let best = me (Histogram.max_error_optimal ~data ~buckets:k) in
      best <= me (Histogram.v_optimal ~data ~buckets:k) +. 1e-9
      && best <= me (Histogram.equal_width ~data ~buckets:k) +. 1e-9)

let prop_range_sum_matches_reconstruction =
  QCheck.Test.make ~name:"histogram range sum = reconstruction sum" ~count:50
    QCheck.(
      triple
        (array_of_size (Gen.return 16) (float_range (-50.) 50.))
        (int_bound 15) (int_bound 15))
    (fun (data, a, b) ->
      let lo = Stdlib.min a b and hi = Stdlib.max a b in
      let h = Histogram.v_optimal ~data ~buckets:4 in
      let r = Histogram.reconstruct h in
      let direct = ref 0. in
      for i = lo to hi do
        direct := !direct +. r.(i)
      done;
      Float_util.approx_equal ~eps:1e-6 !direct (Histogram.range_sum h ~lo ~hi))

let () =
  Alcotest.run "histogram"
    [
      ( "histogram",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "point/reconstruct" `Quick test_point_and_reconstruct;
          Alcotest.test_case "v-optimal vs brute" `Quick test_v_optimal_matches_brute;
          Alcotest.test_case "max-error vs brute" `Quick test_max_error_matches_brute;
          Alcotest.test_case "monotone in buckets" `Quick test_monotone_in_buckets;
          Alcotest.test_case "range sum" `Quick test_range_sum;
          Alcotest.test_case "capped at n" `Quick test_buckets_capped_at_n;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "single bucket values" `Quick test_single_bucket_values;
          QCheck_alcotest.to_alcotest prop_vopt_not_worse_than_equal_width;
          QCheck_alcotest.to_alcotest prop_maxerr_not_worse_than_others;
          QCheck_alcotest.to_alcotest prop_range_sum_matches_reconstruction;
        ] );
    ]
