(* Tests for the baseline thresholding algorithms: conventional L2
   greedy, the greedy max-error heuristic, and the probabilistic
   MinRelVar/MinRelBias reimplementation. *)

module Haar1d = Wavesyn_haar.Haar1d
module Synopsis = Wavesyn_synopsis.Synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Greedy_l2 = Wavesyn_baselines.Greedy_l2
module Greedy_maxerr = Wavesyn_baselines.Greedy_maxerr
module Prob_synopsis = Wavesyn_baselines.Prob_synopsis
module Minmax_dp = Wavesyn_core.Minmax_dp
module Signal = Wavesyn_datagen.Signal
module Ndarray = Wavesyn_util.Ndarray
module Prng = Wavesyn_util.Prng
module Float_util = Wavesyn_util.Float_util

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

let paper_data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |]

let random_data ~seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun _ -> Prng.float rng 40. -. 20.)

(* --- Greedy L2 --- *)

let test_order_is_by_normalized_magnitude () =
  let wavelet = Haar1d.decompose paper_data in
  let order = Greedy_l2.order ~wavelet in
  let n = Array.length wavelet in
  let key k = Float.abs (wavelet.(k) *. Haar1d.normalization ~n k) in
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
        check "sorted" true (key a >= key b -. 1e-12);
        non_increasing rest
    | _ -> ()
  in
  non_increasing order;
  checki "only non-zero coefficients" 5 (List.length order)

let test_greedy_l2_minimizes_l2 () =
  (* L2 greedy must achieve the smallest RMS error among all synopses of
     the same size (checked against exhaustive enumeration). *)
  let data = random_data ~seed:21 8 in
  let wavelet = Haar1d.decompose data in
  let budget = 3 in
  let greedy = Greedy_l2.threshold ~data ~budget in
  let rms syn =
    let approx = Synopsis.reconstruct syn in
    let s = Metrics.summary ~data ~approx () in
    s.Metrics.rms
  in
  let greedy_rms = rms greedy in
  (* enumerate all 3-subsets of indices *)
  let best = ref Float.infinity in
  for a = 0 to 7 do
    for b = a + 1 to 7 do
      for c = b + 1 to 7 do
        let syn = Synopsis.of_wavelet ~wavelet [ a; b; c ] in
        if rms syn < !best then best := rms syn
      done
    done
  done;
  check
    (Printf.sprintf "greedy L2 is RMS-optimal (%g vs %g)" greedy_rms !best)
    true
    (greedy_rms <= !best +. 1e-9)

let test_greedy_l2_budget () =
  let data = random_data ~seed:22 32 in
  List.iter
    (fun b ->
      let syn = Greedy_l2.threshold ~data ~budget:b in
      check (Printf.sprintf "B=%d" b) true (Synopsis.size syn <= b))
    [ 0; 1; 5; 32; 100 ]

let test_greedy_l2_md_matches_1d () =
  (* In one dimension the md path must agree with the 1-D path. *)
  let data = random_data ~seed:23 16 in
  let syn1 = Greedy_l2.threshold ~data ~budget:5 in
  let synm =
    Greedy_l2.threshold_md
      ~data:(Ndarray.of_flat_array ~dims:[| 16 |] (Array.copy data))
      ~budget:5
  in
  check "same coefficient set" true
    (Synopsis.coeffs syn1 = Synopsis.Md.coeffs synm)

let test_greedy_l2_md_2d_improves_with_budget () =
  let rng = Prng.create ~seed:24 in
  let data = Signal.grid_bumps ~rng ~side:8 ~bumps:3 ~amplitude:40. in
  let err b =
    Metrics.of_md_synopsis Metrics.Abs ~data
      (Greedy_l2.threshold_md ~data ~budget:b)
  in
  let errs = List.map err [ 1; 4; 16; 64 ] in
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
        check "improves" true (b <= a +. 1e-9);
        non_increasing rest
    | _ -> ()
  in
  non_increasing errs;
  checkf "full budget exact" 0. (List.nth errs 3)

(* --- Greedy max-error --- *)

let test_greedy_maxerr_b1_is_optimal () =
  (* A single greedy round exhaustively tries every coefficient, so at
     B = 1 the heuristic IS optimal (no such guarantee at B > 1). *)
  let data = random_data ~seed:33 16 in
  List.iter
    (fun metric ->
      let g = Greedy_maxerr.threshold ~data ~budget:1 metric in
      let opt = (Minmax_dp.solve ~data ~budget:1 metric).Minmax_dp.max_err in
      check "B=1 optimal" true
        (Float_util.approx_equal ~eps:1e-9 opt
           (Metrics.of_synopsis metric ~data g)))
    [ Metrics.Abs; Metrics.Rel { sanity = 1. } ]

let test_greedy_maxerr_monotone_in_budget () =
  let data = random_data ~seed:34 32 in
  let errs =
    List.map
      (fun b ->
        Metrics.of_synopsis Metrics.Abs ~data
          (Greedy_maxerr.threshold ~data ~budget:b Metrics.Abs))
      [ 0; 1; 2; 4; 8; 16; 32 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
        check "monotone" true (b <= a +. 1e-9);
        non_increasing rest
    | _ -> ()
  in
  non_increasing errs

let test_greedy_maxerr_bounded_by_optimal () =
  let data = random_data ~seed:25 16 in
  List.iter
    (fun budget ->
      List.iter
        (fun metric ->
          let opt = (Minmax_dp.solve ~data ~budget metric).Minmax_dp.max_err in
          let g =
            Metrics.of_synopsis metric ~data
              (Greedy_maxerr.threshold ~data ~budget metric)
          in
          check
            (Printf.sprintf "B=%d heuristic >= optimal" budget)
            true (g >= opt -. 1e-9))
        [ Metrics.Abs; Metrics.Rel { sanity = 1. } ])
    [ 1; 3; 5 ]

let test_greedy_maxerr_budget_and_full () =
  let data = random_data ~seed:26 16 in
  let syn = Greedy_maxerr.threshold ~data ~budget:100 Metrics.Abs in
  checkf "full budget reaches zero error" 0.
    (Metrics.of_synopsis Metrics.Abs ~data syn);
  let syn0 = Greedy_maxerr.threshold ~data ~budget:0 Metrics.Abs in
  checki "zero budget" 0 (Synopsis.size syn0)

(* --- Probabilistic synopses --- *)

let test_prob_allotments_respect_budget () =
  let data = random_data ~seed:27 32 in
  List.iter
    (fun strategy ->
      List.iter
        (fun budget ->
          let plan =
            Prob_synopsis.build ~data ~budget strategy
              (Metrics.Rel { sanity = 1. })
          in
          check
            (Printf.sprintf "B=%d expected space within budget" budget)
            true
            (Prob_synopsis.expected_space plan <= float_of_int budget +. 1e-9);
          List.iter
            (fun (_, y) -> check "y in (0,1]" true (y > 0. && y <= 1.))
            (Prob_synopsis.allotments plan))
        [ 0; 2; 8; 16 ])
    [ Prob_synopsis.Min_rel_var; Prob_synopsis.Min_rel_bias ]

let test_prob_full_budget_keeps_everything () =
  (* With budget >= #nonzero the DP should give everything y = 1 and a
     rounding draw retains the exact transform. *)
  let data = paper_data in
  let plan =
    Prob_synopsis.build ~data ~budget:8 Prob_synopsis.Min_rel_var Metrics.Abs
  in
  let syn = Prob_synopsis.round plan (Prng.create ~seed:3) in
  checkf "exact at full budget" 0. (Metrics.of_synopsis Metrics.Abs ~data syn);
  checkf "objective zero" 0. (Prob_synopsis.objective plan)

let test_prob_rounding_deterministic_given_seed () =
  let data = random_data ~seed:28 16 in
  let plan =
    Prob_synopsis.build ~data ~budget:4 Prob_synopsis.Min_rel_var
      (Metrics.Rel { sanity = 1. })
  in
  let a = Prob_synopsis.round plan (Prng.create ~seed:5) in
  let b = Prob_synopsis.round plan (Prng.create ~seed:5) in
  check "same seed, same draw" true (Synopsis.coeffs a = Synopsis.coeffs b)

let test_prob_minrelvar_unbiased_values () =
  (* MinRelVar stores c/y: retained coefficients must be scaled up. *)
  let data = random_data ~seed:29 16 in
  let w = Haar1d.decompose data in
  let plan =
    Prob_synopsis.build ~data ~budget:3 Prob_synopsis.Min_rel_var
      (Metrics.Rel { sanity = 1. })
  in
  let ys = Prob_synopsis.allotments plan in
  let syn = Prob_synopsis.round plan (Prng.create ~seed:6) in
  List.iter
    (fun (j, v) ->
      let y = List.assoc j ys in
      check
        (Printf.sprintf "coeff %d scaled by 1/y" j)
        true
        (Float_util.approx_equal ~eps:1e-9 v (w.(j) /. y)))
    (Synopsis.coeffs syn)

let test_prob_minrelbias_plain_values () =
  let data = random_data ~seed:30 16 in
  let w = Haar1d.decompose data in
  let plan =
    Prob_synopsis.build ~data ~budget:3 Prob_synopsis.Min_rel_bias
      (Metrics.Rel { sanity = 1. })
  in
  let syn = Prob_synopsis.round plan (Prng.create ~seed:6) in
  List.iter
    (fun (j, v) -> checkf (Printf.sprintf "coeff %d unscaled" j) w.(j) v)
    (Synopsis.coeffs syn)

let test_prob_evaluate_stats_consistent () =
  let data = random_data ~seed:31 32 in
  let plan =
    Prob_synopsis.build ~data ~budget:6 Prob_synopsis.Min_rel_var
      (Metrics.Rel { sanity = 1. })
  in
  let e =
    Prob_synopsis.evaluate plan ~data (Metrics.Rel { sanity = 1. }) ~trials:50
      ~seed:77
  in
  check "best <= mean" true (e.Prob_synopsis.best_max_err <= e.Prob_synopsis.mean_max_err +. 1e-9);
  check "mean <= worst" true (e.Prob_synopsis.mean_max_err <= e.Prob_synopsis.worst_max_err +. 1e-9);
  check "p95 <= worst" true (e.Prob_synopsis.p95_max_err <= e.Prob_synopsis.worst_max_err +. 1e-9);
  checki "trials recorded" 50 e.Prob_synopsis.trials

let test_prob_never_beats_deterministic_optimum () =
  (* The headline claim: no coin-flip sequence beats the deterministic
     optimum for the same budget... in expectation-space terms the
     comparison uses actual retained size <= B; a draw may retain fewer
     or more. We check the best draw against the optimum at the draw's
     own size. *)
  let data = random_data ~seed:32 16 in
  let metric = Metrics.Rel { sanity = 1. } in
  let budget = 4 in
  let plan = Prob_synopsis.build ~data ~budget Prob_synopsis.Min_rel_var metric in
  let rng = Prng.create ~seed:99 in
  for _ = 1 to 25 do
    let syn = Prob_synopsis.round plan rng in
    let size = Synopsis.size syn in
    let opt = (Minmax_dp.solve ~data ~budget:size metric).Minmax_dp.max_err in
    let err = Metrics.of_synopsis metric ~data syn in
    check "draw >= optimum of its own size" true (err >= opt -. 1e-9)
  done

let () =
  Alcotest.run "baselines"
    [
      ( "greedy_l2",
        [
          Alcotest.test_case "order" `Quick test_order_is_by_normalized_magnitude;
          Alcotest.test_case "RMS optimality" `Quick test_greedy_l2_minimizes_l2;
          Alcotest.test_case "budget" `Quick test_greedy_l2_budget;
          Alcotest.test_case "md matches 1d" `Quick test_greedy_l2_md_matches_1d;
          Alcotest.test_case "md improves with budget" `Quick test_greedy_l2_md_2d_improves_with_budget;
        ] );
      ( "greedy_maxerr",
        [
          Alcotest.test_case "B=1 is optimal" `Quick test_greedy_maxerr_b1_is_optimal;
          Alcotest.test_case "monotone in budget" `Quick test_greedy_maxerr_monotone_in_budget;
          Alcotest.test_case "bounded by optimal" `Quick test_greedy_maxerr_bounded_by_optimal;
          Alcotest.test_case "budget and full" `Quick test_greedy_maxerr_budget_and_full;
        ] );
      ( "prob_synopsis",
        [
          Alcotest.test_case "allotments respect budget" `Quick test_prob_allotments_respect_budget;
          Alcotest.test_case "full budget exact" `Quick test_prob_full_budget_keeps_everything;
          Alcotest.test_case "deterministic given seed" `Quick test_prob_rounding_deterministic_given_seed;
          Alcotest.test_case "minrelvar scales values" `Quick test_prob_minrelvar_unbiased_values;
          Alcotest.test_case "minrelbias plain values" `Quick test_prob_minrelbias_plain_values;
          Alcotest.test_case "evaluate stats" `Quick test_prob_evaluate_stats_consistent;
          Alcotest.test_case "never beats optimum" `Quick test_prob_never_beats_deterministic_optimum;
        ] );
    ]
