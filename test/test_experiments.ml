(* Smoke tests for the experiment harness: the registry is well-formed
   and the paper-artifact experiments produce the exact expected
   content. The full-suite sweep runs every experiment once. *)

module E = Wavesyn_experiments.Experiments

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_registry () =
  checki "nineteen experiments" 19 (List.length E.all);
  let ids = List.map (fun e -> e.E.id) E.all in
  checki "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids));
  List.iter
    (fun e -> check (e.E.id ^ " has a title") true (String.length e.E.title > 0))
    E.all

let test_find () =
  check "finds E1" true (E.find "E1" <> None);
  check "case-insensitive" true (E.find "e7" <> None);
  check "unknown is None" true (E.find "E99" = None)

let test_e1_content () =
  match E.find "E1" with
  | None -> Alcotest.fail "E1 missing"
  | Some e ->
      let out = e.E.run () in
      check "decomposition row" true (contains out "[2, 1, 4, 4]");
      check "details row" true (contains out "[0, -1, -1, 0]");
      check "transform" true (contains out "W_A = [2.75, -1.25, 0.5, 0, 0, -1, -1, 0]")

let test_e2_content () =
  match E.find "E2" with
  | None -> Alcotest.fail "E2 missing"
  | Some e ->
      let out = e.E.run () in
      check "d4 identity" true (contains out "d4 = +c0 -c1 +c6 = 3");
      check "root row" true (contains out "c0    2.75")

let test_e3_content () =
  match E.find "E3" with
  | None -> Alcotest.fail "E3 missing"
  | Some e ->
      let out = e.E.run () in
      check "average all plus" true (contains out "W[0,0]:  ++++/++++/++++/++++");
      check "checkerboard" true (contains out "W[1,1]:  ++--/++--/--++/--++");
      check "figure 2 node" true (contains out "{W[1,0], W[0,1], W[1,1]}")

let test_full_sweep () =
  (* Every experiment must run to completion and produce its header. *)
  List.iter
    (fun e ->
      let out = e.E.run () in
      check (e.E.id ^ " non-empty") true (String.length out > 100);
      check (e.E.id ^ " labelled") true (contains out (e.E.id ^ ":")))
    E.all

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ( "paper artifacts",
        [
          Alcotest.test_case "E1 content" `Quick test_e1_content;
          Alcotest.test_case "E2 content" `Quick test_e2_content;
          Alcotest.test_case "E3 content" `Quick test_e3_content;
        ] );
      ( "full sweep",
        [ Alcotest.test_case "all experiments run" `Slow test_full_sweep ] );
    ]
