(* Network chaos and replication suite: journal shipping over the
   wire, follower bootstrap, connection fault modes, SIGTERM drain,
   and the headline failover proof — a seeded loadgen schedule that
   survives a primary crash mid-storm with a reply transcript
   byte-identical to a run with no failure at all, at every pool size.

   Run via `dune runtest` or in isolation via `dune build @chaos-net`.
   A watchdog alarm fails the whole suite rather than letting a hung
   socket test wedge the runner. *)

module Validate = Wavesyn_robust.Validate
module Fault = Wavesyn_robust.Fault
module Snapshot = Wavesyn_robust.Snapshot
module Supervisor = Wavesyn_robust.Supervisor
module Stream_synopsis = Wavesyn_stream.Stream_synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Prng = Wavesyn_util.Prng
module Pool = Wavesyn_par.Pool
module Wire = Wavesyn_server.Wire
module Server = Wavesyn_server.Server
module Client = Wavesyn_server.Client
module Failover = Wavesyn_server.Failover
module Replica = Wavesyn_server.Replica
module Loadgen = Wavesyn_server.Loadgen
module Registry = Wavesyn_obs.Registry

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Watchdog: a hung socket test must fail the suite, not wedge it. *)
let () =
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         prerr_endline
           "chaos-net watchdog: a socket test hung past the deadline";
         exit 124));
  ignore (Unix.alarm 300)

(* --- harness --- *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wavesyn_chaos_net_%d_%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir dir 0o755;
    dir

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "%s/wavesyn-chaos-net-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !counter

let must = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Validate.to_string e)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Read one integer counter out of a rendered metrics table; [name]
   matches with or without a label set. *)
let counter_value table name =
  let value_of row =
    match List.filter (fun tok -> tok <> "") (String.split_on_char ' ' row) with
    | _kind :: field :: value :: _
      when field = name
           || (String.length field > String.length name
              && String.sub field 0 (String.length name + 1) = name ^ "{") ->
        int_of_string_opt value
    | _ -> None
  in
  match List.filter_map value_of (String.split_on_char '\n' table) with
  | v :: _ -> v
  | [] -> Alcotest.fail (name ^ " missing from the metrics table")

(* Canonical state fingerprint: two stores are byte-identical iff the
   encodings of their coefficient states are equal. *)
let fingerprint sup =
  Snapshot.encode
    (Snapshot.of_stream ~seq:(Supervisor.seq sup) (Supervisor.stream sup))

(* A primary store with [updates] seeded point updates acknowledged. *)
let build_store ?keep ~dir ~n ~updates ~seed () =
  let scfg =
    Supervisor.config ~checkpoint_every:1_000_000 ~recut_every:1_000_000
      ?keep ~sync:false ~dir ~n ~budget:8 Metrics.Abs
  in
  let sup = must (Supervisor.open_store scfg) in
  let rng = Prng.create ~seed in
  for _ = 1 to updates do
    ignore
      (must
         (Supervisor.ingest sup ~i:(Prng.int rng n)
            ~delta:(float_of_int (Prng.int rng 21 - 10) /. 4.)))
  done;
  (sup, scfg)

(* Serve an existing (closed) store: recovered data plus a ship
   source, exactly as `server --listen --store` wires it. *)
let ship_of_store dir =
  let r = must (Supervisor.recover ~dir) in
  ( Stream_synopsis.current_data r.Supervisor.r_stream,
    {
      Server.ship_dir = dir;
      ship_seq = r.Supervisor.r_seq;
      ship_manifest = Supervisor.manifest_text r.Supervisor.r_config;
    } )

let spawn_server server = Domain.spawn (fun () -> Server.run server)

let join_server runner =
  match Domain.join runner with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("server run: " ^ Validate.to_string e)

let connect ?timeout_ms path =
  match Client.connect ~wait_ms:5000. ?timeout_ms path with
  | Ok c -> c
  | Error e -> Alcotest.fail (Validate.to_string e)

let shutdown_via path =
  let c = connect path in
  ignore (Client.request_one c Wire.Shutdown);
  Client.close c

(* --- replica sync and bootstrap --- *)

let test_replica_bootstrap () =
  let dir_p = temp_dir () and dir_f = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir_p; rm_rf dir_f) @@ fun () ->
  let sup_p, scfg = build_store ~dir:dir_p ~n:32 ~updates:20 ~seed:2 () in
  let reference = fingerprint sup_p in
  Supervisor.close sup_p;
  let data, ship = ship_of_store dir_p in
  let path = sock_path () in
  let server =
    Server.create
      (Server.config ~budget:8 ~ship ~role:"primary" ~path data)
  in
  let runner = spawn_server server in
  Fun.protect ~finally:(fun () -> shutdown_via path; join_server runner)
  @@ fun () ->
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* The handshake reports the primary's sequence and exact manifest. *)
  let seq, manifest = must (Replica.handshake c) in
  checki "handshake seq" 20 seq;
  checks "handshake manifest" (Supervisor.manifest_text scfg) manifest;
  (* Bootstrap pages the whole journal across SYNC batches. *)
  let sup_f, progress = must (Replica.bootstrap ~batch:8 ~dir:dir_f c) in
  Fun.protect ~finally:(fun () -> Supervisor.close sup_f) @@ fun () ->
  checki "paged batches" 3 progress.Replica.batches;
  checki "every record shipped" 20 progress.Replica.records;
  checki "no snapshot needed" 0 progress.Replica.snapshots;
  checki "follower current" 20 progress.Replica.final_seq;
  checks "follower state bit-identical to the primary" reference
    (fingerprint sup_f);
  (* A second sync against a current follower ships nothing. *)
  let again = must (Replica.sync c sup_f) in
  checki "idempotent sync ships nothing" 0 again.Replica.records;
  (* Follower is read-only until promoted — then writes flow. *)
  check "follower refuses ingest" true
    (Result.is_error (Supervisor.ingest sup_f ~i:1 ~delta:1.));
  check "follower role" true (Supervisor.role sup_f = Supervisor.Follower);
  Supervisor.promote sup_f;
  checki "promoted store accepts the next write" 21
    (must (Supervisor.ingest sup_f ~i:1 ~delta:1.))

let test_replica_snapshot_bootstrap () =
  let dir_p = temp_dir () and dir_f = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir_p; rm_rf dir_f) @@ fun () ->
  (* Checkpoint + compaction leaves the journal starting past the
     origin: a since=0 cursor can only be served by a snapshot. *)
  let sup_p, _ = build_store ~keep:1 ~dir:dir_p ~n:32 ~updates:30 ~seed:4 () in
  ignore (must (Supervisor.checkpoint sup_p));
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 5 do
    ignore
      (must
         (Supervisor.ingest sup_p ~i:(Prng.int rng 32)
            ~delta:(float_of_int (Prng.int rng 9 - 4))))
  done;
  let reference = fingerprint sup_p in
  Supervisor.close sup_p;
  let data, ship = ship_of_store dir_p in
  let path = sock_path () in
  let server =
    Server.create
      (Server.config ~budget:8 ~ship ~role:"primary" ~path data)
  in
  let runner = spawn_server server in
  Fun.protect ~finally:(fun () -> shutdown_via path; join_server runner)
  @@ fun () ->
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let sup_f, progress = must (Replica.bootstrap ~dir:dir_f c) in
  Fun.protect ~finally:(fun () -> Supervisor.close sup_f) @@ fun () ->
  checki "bootstrapped through a snapshot" 1 progress.Replica.snapshots;
  checki "journal suffix shipped on top" 5 progress.Replica.records;
  checki "follower current" 35 progress.Replica.final_seq;
  checks "snapshot + suffix reproduces the primary" reference
    (fingerprint sup_f)

(* --- connection fault modes --- *)

let test_data n =
  let rng = Prng.create ~seed:5 in
  Array.init n (fun _ -> Prng.float rng 50.)

(* Run [f client] against a standalone server whose every connection
   is armed with [kinds]; stop the server with SIGTERM afterwards —
   chaos servers cannot be shut down over their own poisoned wire. *)
let with_faulty_server ?timeout_ms ~kinds ~seed f =
  let path = sock_path () in
  let fault = Fault.create ~kinds ~seed () in
  let server =
    Server.create (Server.config ~budget:8 ~conn_fault:fault ~path (test_data 32))
  in
  let runner = spawn_server server in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Unix.kill (Unix.getpid ()) Sys.sigterm;
        join_server runner)
      (fun () ->
        let c = connect ?timeout_ms path in
        Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c))
  in
  check "chaos server drains on SIGTERM" true (Server.drained server);
  result

let test_conn_fault_modes () =
  (* Conn_drop severs the flow before the request is read. *)
  with_faulty_server ~kinds:[ Fault.Conn_drop ] ~seed:1 (fun c ->
      match Client.request_one c Wire.Ping with
      | Error (Validate.Io_error _) -> ()
      | Ok r -> Alcotest.fail ("drop answered: " ^ Wire.describe_reply r)
      | Error e -> Alcotest.fail (Validate.to_string e));
  (* Conn_truncate tears the reply mid-frame and kills the connection. *)
  with_faulty_server ~kinds:[ Fault.Conn_truncate ] ~seed:2 (fun c ->
      match Client.request_one c Wire.Ping with
      | Error (Validate.Io_error _) -> ()
      | Ok r -> Alcotest.fail ("torn reply decoded: " ^ Wire.describe_reply r)
      | Error e -> Alcotest.fail (Validate.to_string e));
  (* Corrupt_frame flips one bit; the frame CRC rejects the reply. *)
  with_faulty_server ~kinds:[ Fault.Corrupt_frame ] ~seed:3 (fun c ->
      match Client.request_one c Wire.Ping with
      | Error (Validate.Io_error { reason; _ }) ->
          check "CRC named the corruption" true (contains reason "corrupt")
      | Ok r -> Alcotest.fail ("corrupt reply accepted: " ^ Wire.describe_reply r)
      | Error e -> Alcotest.fail (Validate.to_string e));
  (* Blackhole swallows the request forever: only the client's read
     deadline escapes, as the structured timeout error. *)
  with_faulty_server ~timeout_ms:200. ~kinds:[ Fault.Blackhole ] ~seed:4
    (fun c ->
      match Client.request_one c Wire.Ping with
      | Error (Validate.Timeout { what; ms }) ->
          checks "timeout names the wait" "server reply" what;
          check "timeout carries the deadline" true (ms = 200.)
      | Ok r -> Alcotest.fail ("blackhole answered: " ^ Wire.describe_reply r)
      | Error e -> Alcotest.fail (Validate.to_string e));
  (* Conn_delay defers the reply one event-loop round — latency only,
     the answer still arrives intact. *)
  with_faulty_server ~kinds:[ Fault.Conn_delay ] ~seed:5 (fun c ->
      match Client.request_one c Wire.Ping with
      | Ok Wire.Pong -> ()
      | Ok r -> Alcotest.fail ("delayed reply mangled: " ^ Wire.describe_reply r)
      | Error e -> Alcotest.fail (Validate.to_string e))

(* --- SIGTERM drain --- *)

let test_sigterm_drain () =
  let path = sock_path () in
  let hook = ref false in
  let server =
    Server.create
      ~on_drain:(fun () -> hook := true)
      (Server.config ~budget:8 ~path (test_data 32))
  in
  let runner = spawn_server server in
  let c = connect path in
  check "alive before the signal" true
    (Client.request_one c Wire.Ping = Ok Wire.Pong);
  Client.close c;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  join_server runner;
  check "terminated via the drain path" true (Server.drained server);
  check "not a crash" false (Server.crashed server);
  check "on_drain ran after the drain" true !hook;
  check "socket file removed" false (Sys.file_exists path)

(* --- the failover proof --- *)

let storm ~seed ~requests ~batch ~n rpc =
  let buf = Buffer.create 4096 in
  let summary =
    must
      (Loadgen.run ~rpc ~seed ~requests ~batch ~n ~mix:Loadgen.default_mix
         ~out:(Buffer.add_string buf) ())
  in
  (Buffer.contents buf, summary)

(* The no-failure reference: the same store served by one healthy
   primary, the same seeded schedule. *)
let baseline_transcript ~dir ~seed ~requests ~batch =
  let data, ship = ship_of_store dir in
  let path = sock_path () in
  let server =
    Server.create
      (Server.config ~budget:8 ~queue_bound:64 ~ship ~role:"primary" ~path data)
  in
  let runner = spawn_server server in
  Fun.protect ~finally:(fun () -> shutdown_via path; join_server runner)
  @@ fun () ->
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  storm ~seed ~requests ~batch ~n:(Array.length data) (Client.request c)

(* Kill the primary mid-storm with [crash_after] and let the client
   fail over to a bootstrapped warm standby. Returns the transcript,
   the summary, and the failover metrics table. *)
let failover_transcript ~dir ~domains ~seed ~requests ~batch ~crash_after =
  let data, ship = ship_of_store dir in
  let n = Array.length data in
  let dir_f = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir_f) @@ fun () ->
  let path_p = sock_path () and path_s = sock_path () in
  let pool_p = Pool.create ~domains () and pool_s = Pool.create ~domains () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool_p; Pool.shutdown pool_s)
  @@ fun () ->
  let primary =
    Server.create ~pool:pool_p
      (Server.config ~budget:8 ~queue_bound:64 ~ship ~role:"primary"
         ~crash_after ~path:path_p data)
  in
  let runner_p = spawn_server primary in
  (* Bootstrap the warm standby from the live primary. *)
  let c = connect path_p in
  let sup_f, _ = must (Replica.bootstrap ~dir:dir_f c) in
  Client.close c;
  Fun.protect ~finally:(fun () -> Supervisor.close sup_f) @@ fun () ->
  let standby =
    Server.create ~pool:pool_s
      ~on_handoff:(fun () ->
        Supervisor.promote sup_f;
        Supervisor.seq sup_f)
      (Server.config ~budget:8 ~queue_bound:64
         ~ship:
           {
             Server.ship_dir = dir_f;
             ship_seq = Supervisor.seq sup_f;
             ship_manifest = ship.Server.ship_manifest;
           }
         ~role:"follower" ~path:path_s data)
  in
  let runner_s = spawn_server standby in
  Fun.protect ~finally:(fun () -> shutdown_via path_s; join_server runner_s)
  @@ fun () ->
  let obs = Registry.create () in
  let f = Failover.create ~obs ~wait_ms:5000. ~standby:path_s path_p in
  let transcript, summary =
    Fun.protect ~finally:(fun () -> Failover.close f) @@ fun () ->
    storm ~seed ~requests ~batch ~n (Failover.rpc f)
  in
  join_server runner_p;
  check "primary stopped at the simulated kill" true (Server.crashed primary);
  check "client promoted the standby" true (Failover.promoted f);
  check "standby holds every acked write the client saw" true
    (Failover.seen_seq f <= Supervisor.seq sup_f);
  check "promotion flipped the store role" true
    (Supervisor.role sup_f = Supervisor.Primary);
  (transcript, summary, Registry.render_table obs)

let test_failover_byte_identity () =
  let dir_p = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir_p) @@ fun () ->
  let sup_p, _ = build_store ~dir:dir_p ~n:64 ~updates:16 ~seed:6 () in
  Supervisor.close sup_p;
  let seed = 7 and requests = 32 and batch = 4 in
  (* Schedule frames on the primary before the kill: bootstrap's
     handshake + sync (2) and the failover client's probe (1), then
     loadgen frames — crash_after 7 kills the primary on the 4th
     loadgen frame, mid-storm, with that frame unanswered. *)
  let crash_after = 7 in
  let reference, ref_summary =
    baseline_transcript ~dir:dir_p ~seed ~requests ~batch
  in
  checki "the schedule saturates nothing" 0 ref_summary.Loadgen.overloads;
  List.iter
    (fun domains ->
      let transcript, summary, table =
        failover_transcript ~dir:dir_p ~domains ~seed ~requests ~batch
          ~crash_after
      in
      let tag = Printf.sprintf " (pool %d)" domains in
      checks ("failover transcript byte-identical" ^ tag) reference transcript;
      checks ("transcript CRC identical" ^ tag)
        ref_summary.Loadgen.transcript_crc summary.Loadgen.transcript_crc;
      checki ("every request answered" ^ tag) requests summary.Loadgen.replies;
      checki ("one transport failure" ^ tag) 1
        (counter_value table "client.failover.failures");
      checki ("one promotion" ^ tag) 1
        (counter_value table "client.failover.promotions");
      checki ("the dropped frame resent" ^ tag) 1
        (counter_value table "client.failover.resends");
      checki ("breaker tripped once" ^ tag) 1
        (counter_value table "retry.breaker.trips"))
    [ 1; 4 ]

(* Client-side chaos — drop, torn frame, delay — must be invisible in
   the transcript: dropped and torn frames are resent whole on a fresh
   connection before any reply is recorded. *)
let test_client_chaos_transcript () =
  let path = sock_path () in
  let data = test_data 64 in
  let server =
    Server.create (Server.config ~budget:8 ~queue_bound:64 ~path data)
  in
  let runner = spawn_server server in
  Fun.protect ~finally:(fun () -> shutdown_via path; join_server runner)
  @@ fun () ->
  let run fault =
    let f = Failover.create ~wait_ms:5000. ?fault path in
    Fun.protect ~finally:(fun () -> Failover.close f) @@ fun () ->
    storm ~seed:13 ~requests:24 ~batch:3 ~n:64 (Failover.rpc f)
  in
  let clean, clean_summary = run None in
  let chaotic, chaos_summary =
    run
      (Some
         (Fault.create
            ~kinds:[ Fault.Conn_drop; Fault.Conn_truncate; Fault.Conn_delay ]
            ~rate:0.4 ~seed:21 ()))
  in
  checks "chaos leaves the transcript byte-identical" clean chaotic;
  checks "and the CRC" clean_summary.Loadgen.transcript_crc
    chaos_summary.Loadgen.transcript_crc

let () =
  Alcotest.run "chaos-net"
    [
      ( "replica",
        [
          Alcotest.test_case "bootstrap pages the journal" `Quick
            test_replica_bootstrap;
          Alcotest.test_case "compacted cursor bootstraps via snapshot" `Quick
            test_replica_snapshot_bootstrap;
        ] );
      ( "conn faults",
        [ Alcotest.test_case "every mode observable" `Quick test_conn_fault_modes ] );
      ( "drain",
        [ Alcotest.test_case "sigterm drains cleanly" `Quick test_sigterm_drain ] );
      ( "failover",
        [
          Alcotest.test_case "crash mid-storm, byte-identical transcript"
            `Quick test_failover_byte_identity;
          Alcotest.test_case "client-side chaos is transcript-invisible"
            `Quick test_client_chaos_transcript;
        ] );
    ]
