(* Error guarantees: why max-error synopses matter.

   Builds B-coefficient synopses of a skewed frequency vector with the
   conventional L2-greedy method, the paper's optimal MinMaxErr DP, and
   a probabilistic MinRelVar synopsis [7,8], then prints the per-value
   error profile each one delivers.

   Run with:  dune exec examples/error_guarantees.exe *)

module Metrics = Wavesyn_synopsis.Metrics
module Synopsis = Wavesyn_synopsis.Synopsis
module Minmax_dp = Wavesyn_core.Minmax_dp
module Greedy_l2 = Wavesyn_baselines.Greedy_l2
module Prob_synopsis = Wavesyn_baselines.Prob_synopsis
module Signal = Wavesyn_datagen.Signal
module Prng = Wavesyn_util.Prng
module Stats = Wavesyn_util.Stats

let n = 128
let budget = 20
let sanity = 20.0

let () =
  let rng = Prng.create ~seed:2718 in
  let data = Signal.gaussian_bumps ~rng ~n ~bumps:4 ~amplitude:300. in
  let metric = Metrics.Rel { sanity } in

  let minmax = (Minmax_dp.solve ~data ~budget metric).Minmax_dp.synopsis in
  let greedy = Greedy_l2.threshold ~data ~budget in
  let plan = Prob_synopsis.build ~data ~budget Prob_synopsis.Min_rel_var metric in
  let prob = Prob_synopsis.round plan (Prng.create ~seed:7) in

  let profile name syn =
    let approx = Synopsis.reconstruct syn in
    let errs = Metrics.per_point metric ~data ~approx in
    Printf.printf
      "%-12s size %2d | max rel err %7.4f | mean %7.4f | p95 %7.4f\n" name
      (Synopsis.size syn)
      (Wavesyn_util.Float_util.max_abs errs)
      (Stats.mean errs) (Stats.percentile errs 95.)
  in
  Printf.printf
    "Per-value relative error (N=%d, B=%d, sanity bound s=%g):\n\n" n budget
    sanity;
  profile "l2-greedy" greedy;
  profile "minmax-dp" minmax;
  profile "minrelvar" prob;

  (* The probabilistic scheme's quality depends on the coin flips: show
     the spread across 100 independent roundings. *)
  let eval = Prob_synopsis.evaluate plan ~data metric ~trials:100 ~seed:123 in
  Printf.printf
    "\nminrelvar across 100 coin-flip sequences:\n\
    \  best %7.4f | mean %7.4f | p95 %7.4f | worst %7.4f  (mean size %.1f)\n"
    eval.Prob_synopsis.best_max_err eval.Prob_synopsis.mean_max_err
    eval.Prob_synopsis.p95_max_err eval.Prob_synopsis.worst_max_err
    eval.Prob_synopsis.mean_size;

  let opt = Metrics.of_synopsis metric ~data minmax in
  Printf.printf
    "\nThe deterministic optimum (%.4f) needs no luck: every coin-flip\n\
     sequence of the probabilistic scheme is at or above it.\n"
    opt;

  (* Where does the worst error land for each method? *)
  let worst name syn =
    let approx = Synopsis.reconstruct syn in
    let s = Metrics.summary ~sanity ~data ~approx () in
    Printf.printf
      "%-12s worst value at i=%3d (d=%8.3f, reconstructed %8.3f)\n" name
      s.Metrics.argmax_rel
      data.(s.Metrics.argmax_rel)
      (Synopsis.reconstruct_point syn s.Metrics.argmax_rel)
  in
  print_newline ();
  worst "l2-greedy" greedy;
  worst "minmax-dp" minmax;
  worst "minrelvar" prob
