(* Streaming maintenance: keep exact Haar coefficients under point
   updates at O(log N) each, and periodically cut a fresh max-error
   synopsis (extension; cf. the dynamic-maintenance literature the
   paper cites [10, 16]).

   Run with:  dune exec examples/streaming.exe *)

module Stream_synopsis = Wavesyn_stream.Stream_synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Synopsis = Wavesyn_synopsis.Synopsis
module Prng = Wavesyn_util.Prng

let () =
  let n = 256 in
  let rng = Prng.create ~seed:606 in
  let stream = Stream_synopsis.create ~n in
  let metric = Metrics.Rel { sanity = 10. } in
  let budget = 12 in

  Printf.printf "streaming %d-cell frequency vector, re-cut every 1000 updates\n\n" n;
  Printf.printf "%8s %8s %14s %14s %12s\n" "updates" "coeffs" "l2-cut maxrel"
    "minmax maxrel" "improvement";

  for phase = 1 to 5 do
    (* The workload drifts: each phase hammers a different hot range. *)
    let hot_lo = (phase * 47) mod (n - 32) in
    for _ = 1 to 1000 do
      let i =
        if Prng.bernoulli rng 0.7 then hot_lo + Prng.int rng 32
        else Prng.int rng n
      in
      Stream_synopsis.update stream ~i ~delta:(1. +. Prng.float rng 3.)
    done;
    let data = Stream_synopsis.current_data stream in
    let l2 =
      Metrics.of_synopsis metric ~data (Stream_synopsis.cut_l2 stream ~budget)
    in
    let mm =
      Metrics.of_synopsis metric ~data
        (Stream_synopsis.cut_minmax stream ~budget metric)
    in
    Printf.printf "%8d %8d %14.4f %14.4f %11.1fx\n"
      (Stream_synopsis.updates_seen stream)
      (Stream_synopsis.nonzero_count stream)
      l2 mm (l2 /. mm)
  done;

  print_endline
    "\nEach point update touches only the log N + 1 coefficients on its path;\n\
     the expensive optimal re-thresholding runs only at cut points."
