(* Network monitoring over an append-only stream: maintain a one-pass
   wavelet synopsis of per-port traffic counts in O(B + log N) memory,
   then answer heavy-hitter, quantile and range questions from the
   synopsis alone — the Gilbert et al. [10] scenario the paper cites,
   wired to this library's query layer.

   Run with:  dune exec examples/network_monitor.exe *)

module One_pass = Wavesyn_stream.One_pass
module Quantiles = Wavesyn_aqp.Quantiles
module Range_query = Wavesyn_synopsis.Range_query
module Synopsis = Wavesyn_synopsis.Synopsis
module Signal = Wavesyn_datagen.Signal
module Prng = Wavesyn_util.Prng

let () =
  let rng = Prng.create ~seed:8080 in
  let ports = 1024 in

  (* Per-port byte counts: heavy-tailed with a few hot services. *)
  let traffic = Signal.zipf ~rng ~n:ports ~alpha:1.05 ~scale:1_000_000. in

  (* The monitor sees ports in order (one pass, no buffering). *)
  let budget = 48 in
  let monitor = One_pass.create ~budget () in
  let peak_memory = ref 0 in
  Array.iter
    (fun bytes ->
      One_pass.feed monitor bytes;
      if One_pass.working_set monitor > !peak_memory then
        peak_memory := One_pass.working_set monitor)
    traffic;

  Printf.printf
    "streamed %d ports; synopsis budget %d; peak working set %d items\n\
     (vs %d raw counters a naive monitor would hold)\n\n"
    (One_pass.count monitor) budget !peak_memory ports;

  let syn = One_pass.finish monitor in

  (* 1. Total traffic and port-range subtotals. *)
  let total_exact = Array.fold_left ( +. ) 0. traffic in
  let total_est = Range_query.range_sum syn ~lo:0 ~hi:(ports - 1) in
  Printf.printf "total bytes      exact %.3e   estimate %.3e   (err %.2f%%)\n"
    total_exact total_est
    (100. *. Float.abs (total_est -. total_exact) /. total_exact);
  List.iter
    (fun (lo, hi) ->
      let exact = ref 0. in
      for i = lo to hi do
        exact := !exact +. traffic.(i)
      done;
      let est = Range_query.range_sum syn ~lo ~hi in
      Printf.printf "ports %4d-%4d   exact %.3e   estimate %.3e\n" lo hi
        !exact est)
    [ (0, 127); (128, 511); (512, 1023) ];

  (* 2. Traffic quantiles: which port id splits the traffic mass? *)
  print_newline ();
  List.iter
    (fun q ->
      Printf.printf
        "q=%.2f of traffic mass reached by port %4d (exact: %4d)\n" q
        (Quantiles.estimate syn ~q)
        (Quantiles.exact traffic ~q))
    [ 0.5; 0.9; 0.99 ];

  (* 3. Heavy hitters: the largest reconstructed counters. *)
  let approx = Synopsis.reconstruct syn in
  let ranked =
    Array.to_list (Array.mapi (fun i v -> (i, v)) approx)
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    |> List.filteri (fun k _ -> k < 5)
  in
  Printf.printf "\ntop-5 ports by reconstructed traffic:\n";
  List.iter
    (fun (port, est) ->
      Printf.printf "  port %4d  estimate %.3e  exact %.3e\n" port est
        traffic.(port))
    ranked;

  print_endline
    "\nAll answers come from the 48-coefficient synopsis; the monitor never\n\
     held more than a few dozen numbers while streaming a thousand ports."
