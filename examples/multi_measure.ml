(* Multi-measure budget sharing: one global coefficient budget split
   across several measures of the same OLAP domain (the "extended
   wavelets" scenario of the related work [4]), with the paper's
   max-error objective.

   Run with:  dune exec examples/multi_measure.exe *)

module Multi_measure = Wavesyn_core.Multi_measure
module Metrics = Wavesyn_synopsis.Metrics
module Signal = Wavesyn_datagen.Signal
module Prng = Wavesyn_util.Prng

let () =
  let rng = Prng.create ~seed:9090 in
  let n = 64 in
  (* Three measures over the same daily domain with very different
     volatility: revenue (wild), units (moderate), returns (nearly
     flat). *)
  let revenue =
    Array.map (fun x -> x *. 40.) (Signal.random_walk ~rng ~n ~step:1.)
  in
  let units = Signal.gaussian_bumps ~rng ~n ~bumps:3 ~amplitude:120. in
  let returns = Array.map (fun x -> 10. +. x) (Signal.uniform ~rng ~n ~lo:0. ~hi:2.) in
  let measures = [| revenue; units; returns |] in
  let names = [| "revenue"; "units"; "returns" |] in
  let budget = 18 in
  let metric = Metrics.Abs in

  Printf.printf
    "Sharing one budget of %d coefficients across %d measures (N = %d)\n\n"
    budget (Array.length measures) n;

  let report label a =
    Printf.printf "%s: worst max error %.3f\n" label a.Multi_measure.max_err;
    Array.iteri
      (fun i b ->
        Printf.printf "  %-8s budget %2d  max err %8.3f\n" names.(i) b
          a.Multi_measure.per_measure_err.(i))
      a.Multi_measure.budgets;
    print_newline ()
  in
  report "even split (B/M each)" (Multi_measure.even_split ~measures ~budget metric);
  report "optimal shared budget" (Multi_measure.solve ~measures ~budget metric);

  print_endline
    "The optimizer starves the flat measures (their error is already tiny)\n\
     and spends the budget where the data is volatile, minimizing the worst\n\
     guarantee across all measures."
