(* OLAP range sums over a 2-D data cube (the Vitter-Wang scenario [21]),
   answered from multi-dimensional synopses built with the paper's
   Section 3.2 approximation schemes.

   Run with:  dune exec examples/olap_range_sum.exe *)

module Cube = Wavesyn_aqp.Cube
module Metrics = Wavesyn_synopsis.Metrics
module Synopsis = Wavesyn_synopsis.Synopsis
module Signal = Wavesyn_datagen.Signal
module Ndarray = Wavesyn_util.Ndarray
module Prng = Wavesyn_util.Prng

let () =
  let rng = Prng.create ~seed:4242 in
  (* sales[product_group][week]: smooth seasonal structure plus a few
     promotional spikes, rounded to integer units. *)
  let side = 16 in
  let base = Signal.grid_bumps ~rng ~side ~bumps:5 ~amplitude:90. in
  let sales =
    Ndarray.init ~dims:[| side; side |] (fun idx ->
        let spike =
          if Prng.bernoulli rng 0.04 then float_of_int (20 + Prng.int rng 40)
          else 0.
        in
        Float.round (Ndarray.get base idx +. spike))
  in
  let cube = Cube.create ~name:"sales(product, week)" sales in
  Printf.printf "cube %s: %dx%d cells\n\n" (Cube.name cube) side side;

  let budget = 20 in
  let strategies =
    [
      Cube.L2_greedy_md;
      Cube.Additive { epsilon = 0.1; metric = Metrics.Abs };
      Cube.Abs_approx { epsilon = 0.25 };
    ]
  in
  let queries =
    [
      ("Q1 quadrant", [| (0, 7); (0, 7) |]);
      ("Q2 row band", [| (4, 6); (0, 15) |]);
      ("Q3 window", [| (5, 11); (8, 13) |]);
      ("Q4 single cell", [| (3, 3); (9, 9) |]);
      ("Q5 full cube", [| (0, 15); (0, 15) |]);
    ]
  in
  List.iter
    (fun strategy ->
      let syn = Cube.build cube ~budget strategy in
      Printf.printf
        "--- %s: %d coefficients retained, per-cell guarantee (abs) %.2f ---\n"
        (Cube.md_strategy_name strategy)
        (Synopsis.Md.size syn)
        (Cube.guarantee cube syn Metrics.Abs);
      Printf.printf "%-16s %10s %10s %9s\n" "query" "exact" "approx" "rel err";
      List.iter
        (fun (name, ranges) ->
          let a = Cube.range_sum cube syn ~ranges in
          Printf.printf "%-16s %10.1f %10.1f %9.4f\n" name a.Cube.exact
            a.Cube.approx a.Cube.rel_err)
        queries;
      print_newline ())
    strategies;

  (* Group-by directly in the coefficient domain: roll up the week
     dimension to get per-product totals without reconstructing. *)
  let syn = Cube.build cube ~budget (Cube.Additive { epsilon = 0.1; metric = Metrics.Abs }) in
  let per_product = Cube.roll_up cube syn ~dim:1 in
  let exact_totals =
    Wavesyn_synopsis.Marginal.marginal_exact (Cube.data cube) ~dim:1
  in
  let approx_totals = Wavesyn_synopsis.Synopsis.reconstruct per_product in
  print_endline "GROUP BY product (rolled up in the coefficient domain):";
  Printf.printf "%-10s %10s %10s\n" "product" "exact" "approx";
  for p = 0 to 4 do
    Printf.printf "%-10d %10.1f %10.1f\n" p exact_totals.(p) approx_totals.(p)
  done;
  print_newline ();

  print_endline
    "Each query is answered in O(B * D) from the synopsis alone. The\n\
     Section 3.2 schemes bound the worst-case error of every cell, so any\n\
     aggregate inherits a deterministic error bound; roll-ups stay in the\n\
     coefficient domain (no reconstruction)."
