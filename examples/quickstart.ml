(* Quickstart: the paper's Section 2.1 example end-to-end.

   Run with:  dune exec examples/quickstart.exe *)

module Haar1d = Wavesyn_haar.Haar1d
module Synopsis = Wavesyn_synopsis.Synopsis
module Metrics = Wavesyn_synopsis.Metrics
module Minmax_dp = Wavesyn_core.Minmax_dp
module Greedy_l2 = Wavesyn_baselines.Greedy_l2

let data = [| 2.; 2.; 0.; 2.; 3.; 5.; 4.; 4. |]

let print_array label a =
  Printf.printf "%-14s" label;
  Array.iter (Printf.printf " %6.2f") a;
  print_newline ()

let () =
  print_endline "wavesyn quickstart: A = [2; 2; 0; 2; 3; 5; 4; 4]";
  print_endline "";

  (* 1. Decompose. *)
  let wavelet = Haar1d.decompose data in
  print_array "data" data;
  print_array "wavelet W_A" wavelet;
  print_endline "";

  (* 2. Threshold down to B = 2 coefficients, two ways. *)
  let budget = 2 in
  let metric = Metrics.Abs in

  let optimal = Minmax_dp.solve ~data ~budget metric in
  let greedy = Greedy_l2.threshold ~data ~budget in

  Printf.printf "budget B = %d\n" budget;
  Printf.printf "MinMaxErr keeps   : %s  (optimal max abs error %.3f)\n"
    (Synopsis.describe optimal.Minmax_dp.synopsis)
    optimal.Minmax_dp.max_err;
  Printf.printf "L2 greedy keeps   : %s  (max abs error %.3f)\n"
    (Synopsis.describe greedy)
    (Metrics.of_synopsis metric ~data greedy);
  print_endline "";

  (* 3. Reconstruct approximate data from each synopsis. *)
  print_array "exact" data;
  print_array "minmax approx" (Synopsis.reconstruct optimal.Minmax_dp.synopsis);
  print_array "greedy approx" (Synopsis.reconstruct greedy);
  print_endline "";

  (* 4. Point queries straight from the synopsis. *)
  Printf.printf "point query d4: exact %.2f, minmax %.2f, greedy %.2f\n"
    data.(4)
    (Synopsis.reconstruct_point optimal.Minmax_dp.synopsis 4)
    (Synopsis.reconstruct_point greedy 4);

  (* 5. The guarantee: the DP value is the exact worst-case error. *)
  Printf.printf
    "\nEvery reconstructed value is within %.3f of the truth - a guarantee\n\
     the L2-optimal synopsis (worst error %.3f) cannot give.\n"
    optimal.Minmax_dp.max_err
    (Metrics.of_synopsis metric ~data greedy)
