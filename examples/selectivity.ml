(* Selectivity estimation (the Matias-Vitter-Wang scenario [15]):
   estimate range-predicate selectivities of a relation from a tiny
   wavelet synopsis instead of scanning the data.

   Run with:  dune exec examples/selectivity.exe *)

module Relation = Wavesyn_aqp.Relation
module Engine = Wavesyn_aqp.Engine
module Metrics = Wavesyn_synopsis.Metrics
module Signal = Wavesyn_datagen.Signal
module Prng = Wavesyn_util.Prng

let () =
  let rng = Prng.create ~seed:1618 in
  (* A synthetic "customer ages" attribute: two population modes. *)
  let domain = 128 in
  let tuples =
    List.init 20000 (fun _ ->
        let mode = if Prng.bernoulli rng 0.65 then 34. else 68. in
        let v = int_of_float (mode +. (8. *. Prng.gaussian rng)) in
        Stdlib.max 0 (Stdlib.min (domain - 1) v))
  in
  let relation = Relation.of_tuples ~name:"customers.age" ~domain tuples in
  Printf.printf "relation %s: domain %d, %d tuples\n\n"
    (Relation.name relation) (Relation.domain relation)
    (int_of_float (Relation.total relation));

  let budget = 16 in
  let metric = Metrics.Rel { sanity = 50. } in
  let engines =
    [
      ("l2-greedy", Engine.build relation ~budget Engine.L2_greedy);
      ("minmax-rel", Engine.build relation ~budget (Engine.Minmax metric));
    ]
  in

  let predicates =
    [ (18, 30); (30, 45); (45, 60); (60, 80); (25, 75); (0, 17) ]
  in
  List.iter
    (fun (name, engine) ->
      Printf.printf "--- strategy %s (synopsis %d coefficients, guarantee %.3f) ---\n"
        name (Engine.budget_used engine) (Engine.guarantee engine metric);
      Printf.printf "%-12s %10s %10s %8s\n" "age range" "exact" "estimate" "rel err";
      List.iter
        (fun (lo, hi) ->
          let a = Engine.selectivity engine ~lo ~hi in
          Printf.printf "%3d .. %3d   %9.4f%% %9.4f%% %8.4f\n" lo hi
            (100. *. a.Engine.exact) (100. *. a.Engine.approx) a.Engine.rel_err)
        predicates;
      print_newline ())
    engines;

  print_endline
    "The synopsis answers any range predicate in O(B) time; the minmax-rel\n\
     synopsis bounds the error of every individual frequency, which is what\n\
     turns these estimates into guarantees."
